package emac

// Cross-arm batch-kernel tests: every BatchKernelBuilder must produce
// results bit-identical to driving its per-sample LayerKernel once per
// sample — fused term-table/SWAR datapaths and loop fallbacks alike.

import (
	"testing"

	"repro/internal/rng"
)

// batchAriths are the configurations under test: the three fused
// datapaths plus configurations that must take the loop fallback
// (multi-word posit quire, 12-bit formats, fixed RNE).
func batchAriths() []Arithmetic {
	rneFixed := NewFixed(8, 4)
	rneFixed.RoundNearest = true
	return []Arithmetic{
		NewPosit(8, 0), NewPosit(8, 1), NewPosit(8, 2), NewPosit(12, 1),
		NewFloatN(8, 4), NewFloatN(6, 2), NewFloatN(12, 5),
		NewFixed(8, 4), NewFixed(8, 1), NewFixed(12, 6), rneFixed,
	}
}

// codePatterns returns every n-bit pattern for narrow formats, or a
// random subset for wide ones.
func codePatterns(a Arithmetic, r *rng.Source, max int) []Code {
	n := a.BitWidth()
	if n <= 8 {
		out := make([]Code, 1<<n)
		for i := range out {
			out[i] = Code(i)
		}
		return out
	}
	out := make([]Code, max)
	for i := range out {
		out[i] = Code(r.Uint64() & (1<<n - 1))
	}
	return out
}

// TestBatchKernelExhaustiveSweep sweeps every (weight, activation)
// operand pair of each 8-bit arm through a 1×1 layer: one ForwardBatch
// flush carrying the whole code space must match per-sample Forward
// bit-for-bit. Wide formats get a random subset (their fused tiers are
// gated off; this exercises the loop fallback).
func TestBatchKernelExhaustiveSweep(t *testing.T) {
	r := rng.New(3)
	for _, a := range batchAriths() {
		bb, ok := a.(BatchKernelBuilder)
		if !ok {
			t.Fatalf("%s: no BatchKernelBuilder", a.Name())
		}
		kb := a.(KernelBuilder)
		pats := codePatterns(a, r, 64)
		for _, bias := range []Code{a.Quantize(0), a.Quantize(0.375), a.Quantize(-1)} {
			for _, wc := range pats {
				w, b := [][]Code{{wc}}, []Code{bias}
				bk, ok := bb.NewBatchLayerKernel(w, b)
				if !ok {
					t.Fatalf("%s: no batch kernel", a.Name())
				}
				lk, ok := kb.NewLayerKernel(w, b)
				if !ok {
					t.Fatalf("%s: no layer kernel", a.Name())
				}
				nb := len(pats)
				act := make([]Code, nb)
				copy(act, pats)
				got := make([]Code, nb)
				bk.ForwardBatchStrided(act, got, nb)
				want := make([]Code, 1)
				for s, ac := range pats {
					lk.Forward([]Code{ac}, want)
					if got[s] != want[0] {
						t.Fatalf("%s bias %#x w %#x a %#x: batch %#x, per-sample %#x",
							a.Name(), bias, wc, ac, got[s], want[0])
					}
				}
			}
		}
	}
}

// TestBatchKernelMatchesLayerKernel checks realistic random layers for
// every arm, through both the strided and the row-slice entry points,
// with flush sizes crossing the scratch-growth boundary.
func TestBatchKernelMatchesLayerKernel(t *testing.T) {
	r := rng.New(17)
	for _, a := range batchAriths() {
		bb := a.(BatchKernelBuilder)
		kb := a.(KernelBuilder)
		const in, out = 30, 16
		w, b := randomLayer(a, in, out, 99)
		bk, ok := bb.NewBatchLayerKernel(w, b)
		if !ok {
			t.Fatalf("%s: no batch kernel", a.Name())
		}
		lk, ok := kb.NewLayerKernel(w, b)
		if !ok {
			t.Fatalf("%s: no layer kernel", a.Name())
		}
		for _, batch := range []int{1, 2, 7, 32} {
			act := make([]Code, batch*in)
			for i := range act {
				act[i] = a.Quantize(r.NormMS(0, 1))
			}
			got := make([]Code, batch*out)
			bk.ForwardBatchStrided(act, got, batch)
			// Row-slice entry must agree with the strided one.
			actRows := make([][]Code, batch)
			gotRows := make([][]Code, batch)
			for s := 0; s < batch; s++ {
				actRows[s] = act[s*in : (s+1)*in]
				gotRows[s] = make([]Code, out)
			}
			bk.ForwardBatch(actRows, gotRows)
			want := make([]Code, out)
			for s := 0; s < batch; s++ {
				lk.Forward(actRows[s], want)
				for j := range want {
					if got[s*out+j] != want[j] {
						t.Fatalf("%s b=%d: strided sample %d row %d: %#x vs %#x",
							a.Name(), batch, s, j, got[s*out+j], want[j])
					}
					if gotRows[s][j] != want[j] {
						t.Fatalf("%s b=%d: rows sample %d row %d: %#x vs %#x",
							a.Name(), batch, s, j, gotRows[s][j], want[j])
					}
				}
			}
		}
	}
}

// TestBatchKernelDeclines: configurations with no kernel tier at all
// must also decline the batch tier.
func TestBatchKernelDeclines(t *testing.T) {
	drop := NewPosit(8, 0)
	drop.QuireDrop = 2
	w, b := randomLayer(drop, 4, 2, 5)
	if _, ok := drop.NewBatchLayerKernel(w, b); ok {
		t.Fatal("truncated-quire posit must have no batch kernel")
	}
	if _, ok := drop.NewBatchLayerKernel(nil, nil); ok {
		t.Fatal("empty shape must decline")
	}
	if _, ok := any(Float32Arith{}).(BatchKernelBuilder); ok {
		t.Fatal("float32 baseline must not offer a batch kernel")
	}
}

// FuzzBatchStrided fuzzes the strided batch layout: arbitrary bytes
// become a flush of activations for a fixed 5-wide layer in each arm,
// and the fused result must match the per-sample kernel bit-for-bit.
func FuzzBatchStrided(f *testing.F) {
	f.Add(uint8(1), []byte{0x00, 0x80, 0xFF, 0x7F, 0x01})
	f.Add(uint8(3), []byte("deep positron strided"))
	f.Add(uint8(8), []byte{0x80, 0x80, 0x80, 0x80, 0x80, 1, 2, 3})
	f.Add(uint8(0), []byte{})
	const in, out = 5, 3
	type arm struct {
		a  Arithmetic
		bk BatchLayerKernel
		lk LayerKernel
	}
	var arms []arm
	for _, a := range []Arithmetic{NewPosit(8, 0), NewFloatN(8, 4), NewFixed(8, 4)} {
		w, b := randomLayer(a, in, out, 23)
		bk, ok := a.(BatchKernelBuilder).NewBatchLayerKernel(w, b)
		if !ok {
			f.Fatalf("%s: no batch kernel", a.Name())
		}
		lk, _ := a.(KernelBuilder).NewLayerKernel(w, b)
		arms = append(arms, arm{a, bk, lk})
	}
	f.Fuzz(func(t *testing.T, b uint8, data []byte) {
		batch := int(b % 33)
		need := batch * in
		act := make([]Code, need)
		for i := range act {
			var v byte
			if len(data) > 0 {
				v = data[i%len(data)]
			}
			act[i] = Code(v)
		}
		for _, ar := range arms {
			got := make([]Code, batch*out)
			ar.bk.ForwardBatchStrided(act, got, batch)
			want := make([]Code, out)
			for s := 0; s < batch; s++ {
				ar.lk.Forward(act[s*in:(s+1)*in], want)
				for j := range want {
					if got[s*out+j] != want[j] {
						t.Fatalf("%s sample %d row %d: batch %#x, per-sample %#x",
							ar.a.Name(), s, j, got[s*out+j], want[j])
					}
				}
			}
		}
	})
}
