package emac

import (
	"math"
	"testing"

	"repro/internal/dyadic"
	"repro/internal/rng"
)

func allAriths() []Arithmetic {
	return []Arithmetic{
		NewPosit(8, 0), NewPosit(8, 1), NewPosit(8, 2),
		NewPosit(7, 0), NewPosit(6, 1), NewPosit(5, 0),
		NewFloat(4, 3), NewFloat(3, 4), NewFloat(3, 2),
		NewFixed(8, 4), NewFixed(8, 6), NewFixed(6, 3),
		Float32Arith{},
	}
}

func TestQuantizeDecodeRoundTrip(t *testing.T) {
	for _, a := range allAriths() {
		for _, x := range []float64{0, 1, -1, 0.5, -0.75, 3.25, -2.125} {
			c := a.Quantize(x)
			got := a.Decode(c)
			// re-quantising the decoded value must be a fixed point
			if a.Quantize(got) != c {
				t.Errorf("%s: quantize not idempotent at %g (code %#x -> %g)", a.Name(), x, c, got)
			}
		}
	}
}

// TestQuantizeErrorBounded checks each arm's *provable* error envelope:
// fixed is within half a ULP (absolute), float within half a mantissa ULP
// (relative, in its normal range), posit within half a fraction ULP for
// values in the central regimes.
func TestQuantizeErrorBounded(t *testing.T) {
	r := rng.New(77)
	for _, a := range allAriths() {
		for i := 0; i < 500; i++ {
			x := r.NormMS(0, 1)
			got := a.Decode(a.Quantize(x))
			err := math.Abs(got - x)
			switch arm := a.(type) {
			case FixedArith:
				if math.Abs(x) >= arm.F.MaxValue() {
					continue // saturation territory
				}
				if err > arm.F.ULP()/2+1e-15 {
					t.Errorf("%s: |quantize(%g)-x| = %g > ulp/2", a.Name(), x, err)
				}
			case FloatArith:
				ax := math.Abs(x)
				if ax < arm.F.MinNormal() || ax > arm.F.MaxValue() {
					continue
				}
				bound := math.Ldexp(1, -int(arm.F.WF())-1) // half mantissa ULP, relative
				if err/ax > bound+1e-15 {
					t.Errorf("%s: rel err %g > %g at %g", a.Name(), err/ax, bound, x)
				}
			case PositArith:
				ax := math.Abs(x)
				if ax < 0.5 || ax > 2 { // central regimes k in {-1,0}
					continue
				}
				fw := int(arm.F.N()) - 3 - int(arm.F.ES())
				if fw < 0 {
					fw = 0
				}
				bound := math.Ldexp(1, -fw-1) // half fraction ULP, relative (x2 margin at binade edge)
				if err/ax > 2*bound+1e-15 {
					t.Errorf("%s: rel err %g > %g at %g", a.Name(), err/ax, 2*bound, x)
				}
			case Float32Arith:
				if x != 0 && err/math.Abs(x) > math.Ldexp(1, -24) {
					t.Errorf("float32 rel err %g at %g", err/math.Abs(x), x)
				}
			}
		}
	}
}

func TestReLU(t *testing.T) {
	for _, a := range allAriths() {
		if got := a.Decode(a.ReLU(a.Quantize(-2.5))); got != 0 {
			t.Errorf("%s: ReLU(-2.5) = %g", a.Name(), got)
		}
		pos := a.Quantize(1.5)
		if got := a.ReLU(pos); got != pos {
			t.Errorf("%s: ReLU(+) must be identity", a.Name())
		}
		if got := a.Decode(a.ReLU(a.Quantize(0))); got != 0 {
			t.Errorf("%s: ReLU(0) = %g", a.Name(), got)
		}
	}
}

// TestMACMatchesExactDot: for the three exact arms, the MAC result equals
// the dyadic dot product rounded once through the arm's own quantizer.
func TestMACMatchesExactDot(t *testing.T) {
	r := rng.New(123)
	for _, a := range allAriths() {
		if _, ok := a.(Float32Arith); ok {
			continue // deliberately inexact
		}
		for trial := 0; trial < 50; trial++ {
			k := 1 + r.Intn(24)
			mac := a.NewMAC(k)
			bias := a.Quantize(r.NormMS(0, 0.5))
			mac.Reset(bias)
			exact := dyadic.FromFloat64(a.Decode(bias))
			for i := 0; i < k; i++ {
				w := a.Quantize(r.NormMS(0, 1))
				x := a.Quantize(math.Abs(r.NormMS(0, 1)))
				mac.Step(w, x)
				exact = exact.Add(dyadic.FromFloat64(a.Decode(w)).Mul(dyadic.FromFloat64(a.Decode(x))))
			}
			got := a.Decode(mac.Result())
			// Reference: quantise the exact sum. For fixed the EMAC
			// truncates, so allow one ULP below; for float/posit it must
			// match the RNE quantisation exactly.
			want := a.Decode(a.Quantize(exact.Float64()))
			switch a.(type) {
			case FixedArith:
				ulp := a.Decode(a.Quantize(want)) // want itself on grid
				_ = ulp
				diff := want - got
				step := fixedStep(a)
				if diff < 0 || diff > step+1e-12 {
					t.Fatalf("%s: MAC=%g exact-rounded=%g (trunc window %g)", a.Name(), got, want, step)
				}
			default:
				if got != want && !(math.Abs(got-want) <= macGridSlack(a, want)) {
					t.Fatalf("%s: MAC=%g want %g (exact %g)", a.Name(), got, want, exact.Float64())
				}
			}
		}
	}
}

// fixedStep returns the ULP of a fixed arithmetic.
func fixedStep(a Arithmetic) float64 {
	fa := a.(FixedArith)
	return fa.F.ULP()
}

// macGridSlack: posit/float MACs round the exact register value directly;
// Quantize(exact.Float64()) can differ by one grid step only when the
// float64 intermediate itself rounded (impossible here: sums of
// low-precision products are exact in float64 for k <= 24... keep 0).
func macGridSlack(Arithmetic, float64) float64 { return 0 }

func TestMACBiasOnly(t *testing.T) {
	for _, a := range allAriths() {
		mac := a.NewMAC(4)
		bias := a.Quantize(0.75)
		mac.Reset(bias)
		if got := a.Decode(mac.Result()); got != a.Decode(bias) {
			t.Errorf("%s: bias-only MAC = %g want %g", a.Name(), got, a.Decode(bias))
		}
	}
}

func TestMACZeroSteps(t *testing.T) {
	for _, a := range allAriths() {
		mac := a.NewMAC(8)
		mac.Reset(a.Quantize(0))
		for i := 0; i < 8; i++ {
			mac.Step(a.Quantize(0), a.Quantize(5))
		}
		if got := a.Decode(mac.Result()); got != 0 {
			t.Errorf("%s: all-zero weights give %g", a.Name(), got)
		}
	}
}

func TestFloat32MACIsSequential(t *testing.T) {
	a := Float32Arith{}
	mac := a.NewMAC(3)
	mac.Reset(a.Quantize(0))
	// A classic cancellation float32 cannot survive: 1e8 + 1 - 1e8
	mac.Step(a.Quantize(1e8), a.Quantize(1))
	mac.Step(a.Quantize(1), a.Quantize(1))
	mac.Step(a.Quantize(-1e8), a.Quantize(1))
	if got := a.Decode(mac.Result()); got == 1 {
		t.Error("float32 MAC unexpectedly exact (should lose the +1)")
	}
	// while every exact arm with enough dynamic range... (posit8 can't
	// represent 1e8; use fixed with wide accumulator at small scale)
}

func TestNames(t *testing.T) {
	if NewPosit(8, 0).Name() != "posit(8,0)" {
		t.Error(NewPosit(8, 0).Name())
	}
	if NewFixed(8, 4).Name() != "fixed(8,q=4)" {
		t.Error(NewFixed(8, 4).Name())
	}
	if (Float32Arith{}).Name() != "float32" {
		t.Error("float32 name")
	}
}

func TestNewFloatN(t *testing.T) {
	a := NewFloatN(8, 4)
	if a.F.WE() != 4 || a.F.WF() != 3 || a.BitWidth() != 8 {
		t.Errorf("NewFloatN(8,4) = %s", a.Name())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewFloatN(4,4) must panic")
		}
	}()
	NewFloatN(4, 4)
}

func TestDynamicRangeOrdering(t *testing.T) {
	// The paper's Fig. 6 premise: at 8 bits, posit es>=1 offers more
	// dynamic range than float we=4, which beats fixed.
	p := NewPosit(8, 1).DynamicRangeLog10()
	f := NewFloatN(8, 4).DynamicRangeLog10()
	x := NewFixed(8, 4).DynamicRangeLog10()
	if !(p > f && f > x) {
		t.Errorf("dynamic range ordering: posit=%.2f float=%.2f fixed=%.2f", p, f, x)
	}
}

func TestFixedRNEAblationArm(t *testing.T) {
	trunc := NewFixed(8, 4)
	rne := NewFixed(8, 4)
	rne.RoundNearest = true
	// 9·ulp²: truncation loses it, RNE keeps one ulp
	mt := trunc.NewMAC(16)
	mr := rne.NewMAC(16)
	mt.Reset(trunc.Quantize(0))
	mr.Reset(rne.Quantize(0))
	u := Code(1) // raw ulp pattern
	for i := 0; i < 9; i++ {
		mt.Step(u, u)
		mr.Step(u, u)
	}
	if trunc.Decode(mt.Result()) != 0 {
		t.Error("truncating EMAC should lose 9·ulp²")
	}
	if rne.Decode(mr.Result()) == 0 {
		t.Error("RNE EMAC should keep 9·ulp²")
	}
}

func TestConvert(t *testing.T) {
	from := NewPosit(8, 0)
	to := NewFixed(8, 4)
	c := from.Quantize(1.5)
	got := Convert(from, to, c)
	if to.Decode(got) != 1.5 {
		t.Errorf("convert 1.5: %v", to.Decode(got))
	}
	// identity fast path
	if Convert(from, from, c) != c {
		t.Error("identity conversion must be a no-op")
	}
	// range mismatch saturates in the target format
	big := from.Quantize(64) // posit(8,0) max
	sat := Convert(from, to, big)
	if to.Decode(sat) != 7.9375 { // fixed(8,4) max
		t.Errorf("saturating conversion: %v", to.Decode(sat))
	}
}
