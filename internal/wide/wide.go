// Package wide implements fixed-width two's-complement integers of
// arbitrary bit width backed by []uint64 words. This is the register file
// behind every exact multiply-and-accumulate unit in the repository: the
// paper's fixed-point accumulator (Fig. 3), the float EMAC's wide
// fixed-point register (Fig. 4) and the posit quire (Fig. 5, eq. (4)) are
// all instances of this type at different widths.
//
// All operations wrap modulo 2^width, exactly as the synthesized register
// would, and widths are fixed at construction: there is no reallocation
// during accumulation, mirroring hardware.
package wide

import (
	"fmt"
	"math/big"
	"math/bits"

	"repro/internal/bitutil"
)

// Int is a width-bit two's-complement integer. The zero value is unusable;
// construct with New. Words store the value little-endian; bits above width
// inside the top word are kept zeroed (canonical form) so equality is
// word-wise comparison.
type Int struct {
	width uint
	w     []uint64
}

// New returns a zero-valued integer of the given bit width (width >= 1).
func New(width uint) *Int {
	if width == 0 {
		panic("wide: width must be >= 1")
	}
	return &Int{width: width, w: make([]uint64, (width+63)/64)}
}

// Width returns the bit width.
func (x *Int) Width() uint { return x.width }

// Words returns the number of 64-bit words backing x.
func (x *Int) Words() int { return len(x.w) }

// topMask is the mask of valid bits in the most significant word.
func (x *Int) topMask() uint64 {
	r := x.width % 64
	if r == 0 {
		return ^uint64(0)
	}
	return bitutil.Mask(r)
}

// normalize clears the unused bits of the top word.
func (x *Int) normalize() {
	x.w[len(x.w)-1] &= x.topMask()
}

// Clone returns a deep copy of x.
func (x *Int) Clone() *Int {
	c := &Int{width: x.width, w: make([]uint64, len(x.w))}
	copy(c.w, x.w)
	return c
}

// Set copies y into x. Widths must match.
func (x *Int) Set(y *Int) *Int {
	x.mustMatch(y)
	copy(x.w, y.w)
	return x
}

// SetZero clears x to zero.
func (x *Int) SetZero() *Int {
	for i := range x.w {
		x.w[i] = 0
	}
	return x
}

// IsZero reports whether x == 0.
func (x *Int) IsZero() bool {
	for _, v := range x.w {
		if v != 0 {
			return false
		}
	}
	return true
}

// Sign reports the sign bit of x: true when the two's-complement value is
// negative.
func (x *Int) Sign() bool {
	return bitutil.Bit(x.w[len(x.w)-1], (x.width-1)%64) == 1
}

// SetInt64 sets x to the sign-extended value v.
func (x *Int) SetInt64(v int64) *Int {
	fill := uint64(0)
	if v < 0 {
		fill = ^uint64(0)
	}
	x.w[0] = uint64(v)
	for i := 1; i < len(x.w); i++ {
		x.w[i] = fill
	}
	x.normalize()
	return x
}

// Bit returns bit i of x (0 <= i < width).
func (x *Int) Bit(i uint) uint64 {
	if i >= x.width {
		panic(fmt.Sprintf("wide: Bit index %d out of range for width %d", i, x.width))
	}
	return bitutil.Bit(x.w[i/64], i%64)
}

// SetBit sets bit i of x to b (0 or 1).
func (x *Int) SetBit(i uint, b uint64) *Int {
	if i >= x.width {
		panic(fmt.Sprintf("wide: SetBit index %d out of range for width %d", i, x.width))
	}
	mask := uint64(1) << (i % 64)
	if b&1 == 1 {
		x.w[i/64] |= mask
	} else {
		x.w[i/64] &^= mask
	}
	return x
}

func (x *Int) mustMatch(y *Int) {
	if x.width != y.width {
		panic(fmt.Sprintf("wide: width mismatch %d vs %d", x.width, y.width))
	}
}

// Add sets x = x + y (mod 2^width) and returns x.
func (x *Int) Add(y *Int) *Int {
	x.mustMatch(y)
	var carry uint64
	for i := range x.w {
		x.w[i], carry = bits.Add64(x.w[i], y.w[i], carry)
	}
	x.normalize()
	return x
}

// Sub sets x = x - y (mod 2^width) and returns x.
func (x *Int) Sub(y *Int) *Int {
	x.mustMatch(y)
	var borrow uint64
	for i := range x.w {
		x.w[i], borrow = bits.Sub64(x.w[i], y.w[i], borrow)
	}
	x.normalize()
	return x
}

// Neg sets x = -x (mod 2^width) and returns x. This is the hardware
// two's-complement step used on lines 11 and 16 of Algorithm 2.
func (x *Int) Neg() *Int {
	var carry uint64 = 1
	for i := range x.w {
		x.w[i], carry = bits.Add64(^x.w[i], 0, carry)
	}
	x.normalize()
	return x
}

// AddUint64Shifted adds v << shift into x (mod 2^width). v is treated as
// unsigned. This is the core "shift to fixed-point position then add"
// operation of every EMAC (Alg. 2 lines 13–14).
func (x *Int) AddUint64Shifted(v uint64, shift uint) *Int {
	if v == 0 {
		return x
	}
	word := int(shift / 64)
	off := shift % 64
	if word >= len(x.w) {
		return x // entirely above the register: hardware would drop it
	}
	lo := v << off
	var hi uint64
	if off != 0 {
		hi = v >> (64 - off)
	}
	var carry uint64
	x.w[word], carry = bits.Add64(x.w[word], lo, 0)
	i := word + 1
	if i < len(x.w) {
		x.w[i], carry = bits.Add64(x.w[i], hi, carry)
		i++
	}
	for carry != 0 && i < len(x.w) {
		x.w[i], carry = bits.Add64(x.w[i], 0, carry)
		i++
	}
	x.normalize()
	return x
}

// SubUint64Shifted subtracts v << shift from x (mod 2^width).
func (x *Int) SubUint64Shifted(v uint64, shift uint) *Int {
	if v == 0 {
		return x
	}
	word := int(shift / 64)
	off := shift % 64
	if word >= len(x.w) {
		return x
	}
	lo := v << off
	var hi uint64
	if off != 0 {
		hi = v >> (64 - off)
	}
	var borrow uint64
	x.w[word], borrow = bits.Sub64(x.w[word], lo, 0)
	i := word + 1
	if i < len(x.w) {
		x.w[i], borrow = bits.Sub64(x.w[i], hi, borrow)
		i++
	}
	for borrow != 0 && i < len(x.w) {
		x.w[i], borrow = bits.Sub64(x.w[i], 0, borrow)
		i++
	}
	x.normalize()
	return x
}

// Shl sets x = x << s (mod 2^width) and returns x.
func (x *Int) Shl(s uint) *Int {
	if s >= x.width {
		return x.SetZero()
	}
	wordShift := int(s / 64)
	bitShift := s % 64
	n := len(x.w)
	if wordShift > 0 {
		for i := n - 1; i >= 0; i-- {
			if i >= wordShift {
				x.w[i] = x.w[i-wordShift]
			} else {
				x.w[i] = 0
			}
		}
	}
	if bitShift > 0 {
		var carry uint64
		for i := 0; i < n; i++ {
			nc := x.w[i] >> (64 - bitShift)
			x.w[i] = x.w[i]<<bitShift | carry
			carry = nc
		}
	}
	x.normalize()
	return x
}

// Shr sets x = x >> s (logical) and returns x.
func (x *Int) Shr(s uint) *Int {
	if s >= x.width {
		return x.SetZero()
	}
	wordShift := int(s / 64)
	bitShift := s % 64
	n := len(x.w)
	if wordShift > 0 {
		for i := 0; i < n; i++ {
			if i+wordShift < n {
				x.w[i] = x.w[i+wordShift]
			} else {
				x.w[i] = 0
			}
		}
	}
	if bitShift > 0 {
		var carry uint64
		for i := n - 1; i >= 0; i-- {
			nc := x.w[i] << (64 - bitShift)
			x.w[i] = x.w[i]>>bitShift | carry
			carry = nc
		}
	}
	return x
}

// Sar sets x = x >> s (arithmetic: sign-filling) and returns x.
func (x *Int) Sar(s uint) *Int {
	neg := x.Sign()
	if s >= x.width {
		if neg {
			for i := range x.w {
				x.w[i] = ^uint64(0)
			}
			x.normalize()
			return x
		}
		return x.SetZero()
	}
	x.Shr(s)
	if neg {
		// fill the vacated top s bits with ones
		for i := uint(0); i < s; i++ {
			x.SetBit(x.width-1-i, 1)
		}
	}
	return x
}

// Len returns the minimal number of bits to represent the unsigned value
// of x (0 for zero). Interpreting x as unsigned: position of MSB + 1.
func (x *Int) Len() uint {
	for i := len(x.w) - 1; i >= 0; i-- {
		if x.w[i] != 0 {
			return uint(i*64 + bits.Len64(x.w[i]))
		}
	}
	return 0
}

// LeadingZeros counts zero bits above the most significant one bit, within
// the declared width — the quire LZD of Algorithm 2 line 17.
func (x *Int) LeadingZeros() uint {
	return x.width - x.Len()
}

// Extract returns the count bits of x starting at bit lo (little-endian
// positions), zero-padded if the range runs past the top. count <= 64.
func (x *Int) Extract(lo, count uint) uint64 {
	if count > 64 {
		panic("wide: Extract count must be <= 64")
	}
	var out uint64
	for i := uint(0); i < count; i++ {
		p := lo + i
		if p >= x.width {
			break
		}
		out |= x.Bit(p) << i
	}
	return out
}

// AnyBelow reports whether any bit strictly below position lo is set —
// the sticky computation for post-accumulation rounding.
func (x *Int) AnyBelow(lo uint) bool {
	if lo == 0 {
		return false
	}
	if lo > x.width {
		lo = x.width
	}
	fullWords := int(lo / 64)
	for i := 0; i < fullWords; i++ {
		if x.w[i] != 0 {
			return true
		}
	}
	rem := lo % 64
	if rem != 0 && x.w[fullWords]&bitutil.Mask(rem) != 0 {
		return true
	}
	return false
}

// Cmp compares the two's-complement values of x and y: -1, 0 or +1.
func (x *Int) Cmp(y *Int) int {
	x.mustMatch(y)
	sx, sy := x.Sign(), y.Sign()
	if sx != sy {
		if sx {
			return -1
		}
		return 1
	}
	for i := len(x.w) - 1; i >= 0; i-- {
		if x.w[i] != y.w[i] {
			if x.w[i] < y.w[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Int64 returns the low 64 bits of x interpreted with x's sign. It panics
// if the value does not fit in an int64.
func (x *Int) Int64() int64 {
	b := x.Big()
	if !b.IsInt64() {
		panic("wide: value does not fit in int64")
	}
	return b.Int64()
}

// Big returns the signed value of x as a new big.Int.
func (x *Int) Big() *big.Int {
	mag := x.Clone()
	neg := mag.Sign()
	if neg {
		mag.Neg()
	}
	out := new(big.Int)
	// assemble from words, most significant first
	for i := len(mag.w) - 1; i >= 0; i-- {
		out.Lsh(out, 64)
		out.Or(out, new(big.Int).SetUint64(mag.w[i]))
	}
	if neg {
		out.Neg(out)
	}
	return out
}

// SetBig sets x to v mod 2^width (two's complement wrap) and returns x.
func (x *Int) SetBig(v *big.Int) *Int {
	m := new(big.Int).Set(v)
	mod := new(big.Int).Lsh(big.NewInt(1), x.width)
	m.Mod(m, mod)
	if m.Sign() < 0 {
		m.Add(m, mod)
	}
	x.SetZero()
	words := m.Bits()
	// big.Word is 64-bit on this platform; copy defensively bit by word.
	for i, bw := range words {
		if i < len(x.w) {
			x.w[i] = uint64(bw)
		}
	}
	x.normalize()
	return x
}

// String renders x in decimal (signed).
func (x *Int) String() string { return x.Big().String() }

// HexString renders the raw two's-complement pattern in hex, most
// significant word first, for debugging register contents.
func (x *Int) HexString() string {
	s := ""
	for i := len(x.w) - 1; i >= 0; i-- {
		s += fmt.Sprintf("%016x", x.w[i])
	}
	return "0x" + s
}
