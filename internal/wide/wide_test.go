package wide

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func big64(v int64) *big.Int { return big.NewInt(v) }

func TestNewAndZero(t *testing.T) {
	x := New(100)
	if !x.IsZero() || x.Width() != 100 || x.Words() != 2 {
		t.Errorf("New(100): zero=%v width=%d words=%d", x.IsZero(), x.Width(), x.Words())
	}
	if x.Sign() {
		t.Error("zero must be non-negative")
	}
}

func TestNewPanicsOnZeroWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) must panic")
		}
	}()
	New(0)
}

func TestSetInt64RoundTrip(t *testing.T) {
	for _, w := range []uint{7, 33, 64, 65, 130, 500} {
		for _, v := range []int64{0, 1, -1, 42, -42, 1 << 40, -(1 << 40)} {
			x := New(w).SetInt64(v)
			// value mod 2^w two's complement: for small |v| vs width it's exact
			if w >= 42 {
				if got := x.Int64(); got != v {
					t.Errorf("w=%d v=%d: got %d", w, v, got)
				}
			}
		}
	}
}

func TestWrapNarrow(t *testing.T) {
	x := New(4).SetInt64(7)
	x.Add(New(4).SetInt64(1))
	if got := x.Int64(); got != -8 {
		t.Errorf("4-bit 7+1 = %d want -8 (wrap)", got)
	}
}

func TestAddSubNegBig(t *testing.T) {
	r := rng.New(1)
	mod := new(big.Int).Lsh(big64(1), 200)
	half := new(big.Int).Rsh(mod, 1)
	toSigned := func(b *big.Int) *big.Int {
		v := new(big.Int).Mod(b, mod)
		if v.Cmp(half) >= 0 {
			v.Sub(v, mod)
		}
		return v
	}
	for i := 0; i < 300; i++ {
		a := randBig(r, 199)
		b := randBig(r, 199)
		x := New(200).SetBig(a)
		y := New(200).SetBig(b)
		sum := x.Clone().Add(y)
		if want := toSigned(new(big.Int).Add(a, b)); sum.Big().Cmp(want) != 0 {
			t.Fatalf("add: %v + %v = %v want %v", a, b, sum.Big(), want)
		}
		diff := x.Clone().Sub(y)
		if want := toSigned(new(big.Int).Sub(a, b)); diff.Big().Cmp(want) != 0 {
			t.Fatalf("sub mismatch")
		}
		neg := x.Clone().Neg()
		if want := toSigned(new(big.Int).Neg(a)); neg.Big().Cmp(want) != 0 {
			t.Fatalf("neg mismatch: %v -> %v want %v", a, neg.Big(), want)
		}
	}
}

func randBig(r *rng.Source, maxBits uint) *big.Int {
	out := new(big.Int)
	words := int(maxBits/64) + 1
	for i := 0; i < words; i++ {
		out.Lsh(out, 64)
		out.Or(out, new(big.Int).SetUint64(r.Uint64()))
	}
	out.Rsh(out, uint(r.Intn(int(maxBits))))
	if r.Intn(2) == 1 {
		out.Neg(out)
	}
	return out
}

func TestShlShr(t *testing.T) {
	r := rng.New(2)
	for i := 0; i < 200; i++ {
		a := new(big.Int).Abs(randBig(r, 150))
		s := uint(r.Intn(200))
		x := New(180).SetBig(a)
		x.Shl(s)
		want := new(big.Int).Lsh(a, s)
		want.Mod(want, new(big.Int).Lsh(big64(1), 180))
		// interpret unsigned for comparison: use extraction
		got := New(180).SetBig(want)
		if x.HexString() != got.HexString() {
			t.Fatalf("shl %d mismatch", s)
		}
		y := New(180).SetBig(a)
		y.Shr(s)
		wantR := new(big.Int).Rsh(new(big.Int).Mod(a, new(big.Int).Lsh(big64(1), 180)), s)
		gotR := New(180).SetBig(wantR)
		if y.HexString() != gotR.HexString() {
			t.Fatalf("shr %d mismatch", s)
		}
	}
}

func TestSar(t *testing.T) {
	x := New(8).SetInt64(-64) // 11000000
	x.Sar(3)
	if got := x.Int64(); got != -8 {
		t.Errorf("sar(-64,3) = %d want -8", got)
	}
	x = New(8).SetInt64(64)
	x.Sar(3)
	if got := x.Int64(); got != 8 {
		t.Errorf("sar(64,3) = %d want 8", got)
	}
	x = New(8).SetInt64(-1)
	x.Sar(100)
	if got := x.Int64(); got != -1 {
		t.Errorf("sar(-1,100) = %d want -1", got)
	}
	x = New(8).SetInt64(5)
	x.Sar(100)
	if got := x.Int64(); got != 0 {
		t.Errorf("sar(5,100) = %d want 0", got)
	}
}

func TestAddUint64Shifted(t *testing.T) {
	r := rng.New(3)
	for i := 0; i < 300; i++ {
		width := uint(65 + r.Intn(300))
		x := New(width)
		ref := new(big.Int)
		for j := 0; j < 10; j++ {
			v := r.Uint64()
			s := uint(r.Intn(int(width)))
			if r.Intn(2) == 0 {
				x.AddUint64Shifted(v, s)
				ref.Add(ref, new(big.Int).Lsh(new(big.Int).SetUint64(v), s))
			} else {
				x.SubUint64Shifted(v, s)
				ref.Sub(ref, new(big.Int).Lsh(new(big.Int).SetUint64(v), s))
			}
		}
		want := New(width).SetBig(ref)
		if x.HexString() != want.HexString() {
			t.Fatalf("shifted add/sub mismatch at width %d", width)
		}
	}
}

func TestLenLeadingZeros(t *testing.T) {
	x := New(100)
	if x.Len() != 0 || x.LeadingZeros() != 100 {
		t.Error("zero Len/LZ")
	}
	x.SetBit(70, 1)
	if x.Len() != 71 || x.LeadingZeros() != 29 {
		t.Errorf("Len=%d LZ=%d", x.Len(), x.LeadingZeros())
	}
}

func TestExtractAnyBelow(t *testing.T) {
	x := New(128)
	x.AddUint64Shifted(0b1011, 62) // straddles the word boundary
	if got := x.Extract(62, 4); got != 0b1011 {
		t.Errorf("Extract = %b", got)
	}
	if x.AnyBelow(62) {
		t.Error("AnyBelow(62) must be false")
	}
	if !x.AnyBelow(63) {
		t.Error("AnyBelow(63) must be true")
	}
	if got := x.Extract(120, 64); got != 0 {
		t.Errorf("Extract past top = %b", got)
	}
}

func TestCmp(t *testing.T) {
	a := New(128).SetInt64(-5)
	b := New(128).SetInt64(3)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Error("Cmp sign handling")
	}
	c := New(128).SetInt64(100)
	d := New(128).SetInt64(101)
	if c.Cmp(d) != -1 {
		t.Error("Cmp magnitude")
	}
}

func TestBitSetBit(t *testing.T) {
	x := New(130)
	x.SetBit(129, 1)
	if x.Bit(129) != 1 || !x.Sign() {
		t.Error("setting the top bit must make the value negative")
	}
	x.SetBit(129, 0)
	if !x.IsZero() {
		t.Error("clearing top bit must restore zero")
	}
}

func TestBigSetBigRoundTrip(t *testing.T) {
	r := rng.New(4)
	for i := 0; i < 200; i++ {
		a := randBig(r, 250)
		x := New(260).SetBig(a)
		if x.Big().Cmp(a) != 0 {
			t.Fatalf("SetBig/Big roundtrip: %v -> %v", a, x.Big())
		}
	}
}

func TestPropNegInvolution(t *testing.T) {
	prop := func(v int64) bool {
		x := New(77).SetInt64(v)
		y := x.Clone().Neg().Neg()
		return x.Cmp(y) == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddCommutes(t *testing.T) {
	prop := func(a, b int64) bool {
		x := New(90).SetInt64(a)
		y := New(90).SetInt64(b)
		l := x.Clone().Add(y)
		r := y.Clone().Add(x)
		return l.Cmp(r) == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch must panic")
		}
	}()
	New(10).Add(New(11))
}

func TestInt64Panics(t *testing.T) {
	x := New(100)
	x.SetBit(90, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Int64 overflow must panic")
		}
	}()
	x.Int64()
}

func TestString(t *testing.T) {
	x := New(64).SetInt64(-123456789)
	if x.String() != "-123456789" {
		t.Errorf("String = %s", x.String())
	}
}
