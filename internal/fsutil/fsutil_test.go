package fsutil

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact.bin")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("got %q", got)
	}
	if err := WriteFileAtomic(path, []byte("v2 longer content"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2 longer content" {
		t.Fatalf("replace: got %q", got)
	}
}

func TestWriteFileAtomicLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, bytes.Repeat([]byte("x"), 1<<16), 0o600); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("want exactly the target file, got %d entries", len(entries))
	}
}

func TestWriteFileAtomicMissingDirFails(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("want error for missing directory")
	}
}
