// Package fsutil holds the small filesystem idioms the artifact plane
// relies on. The one that matters is atomic file replacement: model
// artifacts are the unit of deployment, and a killed writer must never
// leave a truncated artifact where a loader will find it.
package fsutil

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that readers observe either the
// old content or the new content, never a partial write: the bytes go to
// a temporary file in the target's directory (same filesystem, so the
// final rename cannot degrade to a copy) which is fsynced, closed and
// renamed over path. On any error the temporary file is removed and the
// destination is untouched.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			_ = os.Remove(tmpName)
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	tmpName = "" // renamed away; nothing to clean up
	return nil
}
