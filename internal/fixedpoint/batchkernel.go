package fixedpoint

import "repro/internal/bitutil"

// BatchDenseKernel is the GEMM-style batched datapath for one dense
// layer in the fixed arm: a whole flush of samples goes through the
// layer with two samples computed per multiply via SIMD-within-a-
// -register (SWAR) on the packed 64-bit datapath.
//
// The trick is the biased-operand identity. With β = 2^(n-1), write
// every n-bit operand as its biased (unsigned) form u = v + β ∈ [0, 2^n):
//
//	Σ_i w_i·a_i = Σ_i u_w·u_a − β·Σ_i u_w − β·Σ_i u_a + in·β²
//
// The unsigned sum Σ u_w·u_a is the only per-(row, sample) term; the
// weight sum folds into a per-row constant and the activation sum is
// computed once per sample per flush. Because every partial product and
// the whole unsigned sum stay below 2^32 (enforced at construction),
// two samples' activations pack into the two 32-bit lanes of one uint64
// and a single `acc2 += u_w · packed` accumulates both dot products with
// no cross-lane carry — one multiply per two samples. The reconstructed
// signed dot product is exact in int64, after which the readout
// (sign-wrap to the eq.-(3) width, shift, clip) is byte-for-byte the
// per-sample kernel's, so results are bit-identical — the equivalence
// tests sweep this exhaustively.
type BatchDenseKernel struct {
	f       Format
	in, out int
	uw      []uint64 // row-major biased weights (bits ^ β), zero-extended
	bq      []int64  // biases pre-shifted left by q (product scale)
	// rowConst[j] = in·β² − β·Σ_i u_w[j][i]: the weight-side bias terms.
	rowConst     []int64
	wrap         uint // 64 - AccumSize(f, in)
	roundNearest bool
	beta         int64

	// flush scratch, grown on demand.
	ua     []uint32 // sample-major biased activations
	sua    []int64  // per-sample Σ u_a
	packed []uint64 // two-lane packed activations for the current pair
}

// NewBatchDenseKernel builds the SWAR batch kernel. ok is false when the
// configuration has no packed fast path: the eq.-(3) register is wider
// than 64 bits, the format is wider than 8 bits (lanes would need more
// than 32 bits of headroom), or the fan-in is large enough that an
// unsigned lane sum could reach 2^32.
func NewBatchDenseKernel(f Format, w [][]Fixed, b []Fixed, roundNearest bool) (*BatchDenseKernel, bool) {
	f.mustValid()
	out := len(w)
	if out == 0 || len(b) != out || len(w[0]) == 0 {
		return nil, false
	}
	in := len(w[0])
	width := AccumSize(f, in)
	maxU := uint64(1)<<f.n - 1
	if width > 64 || f.n > 8 || uint64(in)*maxU*maxU >= 1<<32 {
		return nil, false
	}
	beta := int64(1) << (f.n - 1)
	k := &BatchDenseKernel{
		f:            f,
		in:           in,
		out:          out,
		uw:           make([]uint64, out*in),
		bq:           make([]int64, out),
		rowConst:     make([]int64, out),
		wrap:         64 - width,
		roundNearest: roundNearest,
		beta:         beta,
	}
	signBit := uint64(beta)
	for j, row := range w {
		if len(row) != in {
			panic("fixedpoint: BatchDenseKernel ragged weight matrix")
		}
		dst := k.uw[j*in : (j+1)*in]
		var suw int64
		for i, v := range row {
			if v.f != f {
				panic("fixedpoint: BatchDenseKernel weight format mismatch")
			}
			u := v.Bits() ^ signBit
			dst[i] = u
			suw += int64(u)
		}
		k.rowConst[j] = int64(in)*beta*beta - beta*suw
	}
	for j, v := range b {
		if v.f != f {
			panic("fixedpoint: BatchDenseKernel bias format mismatch")
		}
		k.bq[j] = v.v << f.q
	}
	return k, true
}

// In returns the layer fan-in.
func (k *BatchDenseKernel) In() int { return k.in }

// Out returns the layer width.
func (k *BatchDenseKernel) Out() int { return k.out }

// Format returns the kernel's fixed-point format.
func (k *BatchDenseKernel) Format() Format { return k.f }

func (k *BatchDenseKernel) grow(b int) {
	if cap(k.ua) < k.in*b {
		k.ua = make([]uint32, k.in*b)
	}
	if cap(k.sua) < b {
		k.sua = make([]int64, b)
	}
	if cap(k.packed) < k.in {
		k.packed = make([]uint64, k.in)
	}
}

// finish applies the per-sample readout to one reconstructed dot
// product: bias, sign-wrap to the register width, shift back to the
// stored scale (truncate or RNE) and clip — exactly the per-sample
// kernel's epilogue.
func (k *BatchDenseKernel) finish(j int, dot int64) uint64 {
	acc := k.bq[j] + dot
	acc = acc << k.wrap >> k.wrap
	var v int64
	if k.roundNearest {
		v = shiftRNE(acc, k.f.q)
	} else {
		v = acc >> k.f.q
	}
	return k.f.FromRaw(v).Bits()
}

// ForwardBatchBits computes dst[s*Out()+j] = round(b[j] + Σ_i
// W[j][i]·act[s*In()+i]) for every sample s: flat sample-major planes,
// len(act) = b·In(), len(dst) = b·Out(). Not safe for concurrent use.
func (k *BatchDenseKernel) ForwardBatchBits(act, dst []uint64, b int) {
	if b < 0 || len(act) != b*k.in || len(dst) != b*k.out {
		panic("fixedpoint: BatchDenseKernel batch size mismatch")
	}
	if b == 0 {
		return
	}
	k.grow(b)
	in, out := k.in, k.out
	mask := bitutil.Mask(k.f.n)
	signBit := uint64(k.beta)
	ua, sua := k.ua, k.sua
	// Decode once per flush: bias every activation (one XOR) and bank the
	// per-sample activation sums.
	for s := 0; s < b; s++ {
		row := act[s*in : (s+1)*in]
		urow := ua[s*in : (s+1)*in]
		var sum int64
		for i, bits := range row {
			u := uint32((bits & mask) ^ signBit)
			urow[i] = u
			sum += int64(u)
		}
		sua[s] = sum
	}
	packed := k.packed[:in]
	s := 0
	for ; s+1 < b; s += 2 {
		u0 := ua[s*in : (s+1)*in]
		u1 := ua[(s+1)*in : (s+2)*in]
		for i := range packed {
			packed[i] = uint64(u0[i]) | uint64(u1[i])<<32
		}
		ba0 := k.beta * sua[s]
		ba1 := k.beta * sua[s+1]
		d0 := dst[s*out : (s+1)*out]
		d1 := dst[(s+1)*out : (s+2)*out]
		for j := 0; j < out; j++ {
			row := k.uw[j*in : (j+1)*in]
			var acc2 uint64
			for i, w := range row {
				acc2 += w * packed[i]
			}
			rc := k.rowConst[j]
			d0[j] = k.finish(j, int64(acc2&0xFFFFFFFF)-ba0+rc)
			d1[j] = k.finish(j, int64(acc2>>32)-ba1+rc)
		}
	}
	if s < b { // odd tail: single-lane pass
		urow := ua[s*in : (s+1)*in]
		ba := k.beta * sua[s]
		d := dst[s*out : (s+1)*out]
		for j := 0; j < out; j++ {
			row := k.uw[j*in : (j+1)*in]
			var acc uint64
			for i, w := range row {
				acc += w * uint64(urow[i])
			}
			d[j] = k.finish(j, int64(acc)-ba+k.rowConst[j])
		}
	}
}
