package fixedpoint

import (
	"testing"

	"repro/internal/rng"
)

func randFixed(f Format, n int, r *rng.Source) []Fixed {
	out := make([]Fixed, n)
	for i := range out {
		out[i] = f.FromBits(r.Uint64())
	}
	return out
}

// TestBatchDenseKernelMatchesPerSample checks random layers in both
// rounding modes against the per-sample kernel, odd and even batch sizes
// included (the odd tail takes the single-lane path).
func TestBatchDenseKernelMatchesPerSample(t *testing.T) {
	r := rng.New(11)
	for _, tc := range []struct{ n, q uint }{{4, 2}, {8, 4}, {8, 7}, {8, 0}, {6, 3}} {
		f := MustFormat(tc.n, tc.q)
		for _, rne := range []bool{false, true} {
			for trial := 0; trial < 4; trial++ {
				in, out := 1+r.Intn(30), 1+r.Intn(10)
				w := make([][]Fixed, out)
				for j := range w {
					w[j] = randFixed(f, in, r)
				}
				b := randFixed(f, out, r)
				bk, ok := NewBatchDenseKernel(f, w, b, rne)
				if !ok {
					t.Fatalf("%v: no batch kernel for in=%d", f, in)
				}
				sk, ok := NewDenseKernel(f, w, b, rne)
				if !ok {
					t.Fatalf("%v: no per-sample kernel", f)
				}
				batch := 1 + r.Intn(9)
				act := make([]uint64, batch*in)
				for i := range act {
					act[i] = r.Uint64()
				}
				got := make([]uint64, batch*out)
				bk.ForwardBatchBits(act, got, batch)
				want := make([]uint64, out)
				for s := 0; s < batch; s++ {
					sk.ForwardBits(act[s*in:(s+1)*in], want)
					for j, wb := range want {
						if got[s*out+j] != wb {
							t.Fatalf("%v rne=%v in=%d: sample %d row %d: batch %#x, per-sample %#x",
								f, rne, in, s, j, got[s*out+j], wb)
						}
					}
				}
			}
		}
	}
}

// TestBatchDenseKernelExhaustive sweeps every (weight, activation) 8-bit
// pattern pair through a 1×1 layer with extreme biases in both rounding
// modes — the SWAR identity must hold on every operand pair.
func TestBatchDenseKernelExhaustive(t *testing.T) {
	f := MustFormat(8, 4)
	count := int(f.Count())
	for _, bias := range []uint64{0, 0x7F, 0x80, 0x2A} {
		for _, rne := range []bool{false, true} {
			bv := []Fixed{f.FromBits(bias)}
			for wb := 0; wb < count; wb++ {
				w := [][]Fixed{{f.FromBits(uint64(wb))}}
				bk, ok := NewBatchDenseKernel(f, w, bv, rne)
				if !ok {
					t.Fatal("no batch kernel for 1x1 Q(8,4)")
				}
				sk, _ := NewDenseKernel(f, w, bv, rne)
				act := make([]uint64, count)
				for ab := range act {
					act[ab] = uint64(ab)
				}
				got := make([]uint64, count)
				bk.ForwardBatchBits(act, got, count)
				want := make([]uint64, 1)
				for ab := 0; ab < count; ab++ {
					sk.ForwardBits(act[ab:ab+1], want)
					if got[ab] != want[0] {
						t.Fatalf("bias %#x rne=%v w %#x a %#x: batch %#x, per-sample %#x",
							bias, rne, wb, ab, got[ab], want[0])
					}
				}
			}
		}
	}
}

// TestBatchDenseKernelGates checks the packed path declines what it
// cannot carry.
func TestBatchDenseKernelGates(t *testing.T) {
	wide := MustFormat(16, 8)
	w := [][]Fixed{{wide.Zero()}}
	if _, ok := NewBatchDenseKernel(wide, w, []Fixed{wide.Zero()}, false); ok {
		t.Fatal("n=16 must have no SWAR batch kernel")
	}
	f := MustFormat(8, 4)
	bk, ok := NewBatchDenseKernel(f, [][]Fixed{{f.Zero()}}, []Fixed{f.Zero()}, false)
	if !ok {
		t.Fatal("Q(8,4) 1x1 should qualify")
	}
	bk.ForwardBatchBits(nil, nil, 0) // empty flush must not panic
}
