// Package fixedpoint implements parameterised two's-complement Q-format
// fixed point — the third arm of the paper's EMAC comparison (Fig. 3).
// A Format(n, q) value stores an n-bit signed integer i and represents
// i × 2^-q; weights, biases and activations share the same layout. The
// EMAC accumulates 2n-bit exact products in a register sized by eq. (3),
// then shifts right by q and, following the paper, *truncates* to n bits
// with clipping at the maximum magnitude (an RNE variant is provided for
// the rounding ablation study).
package fixedpoint

import (
	"fmt"
	"math"
	"math/big"

	"repro/internal/bitutil"
	"repro/internal/dyadic"
	"repro/internal/wide"
)

// MaxN bounds the supported width so that products fit in int64:
// |v·w| <= 2^(2n-2) = 2^62 at n = 32.
const MaxN = 32

// Format describes a Q(n, q) fixed-point layout: n total bits of which q
// are fraction bits (n-q integer bits including sign).
type Format struct {
	n, q uint
}

// NewFormat validates and returns a fixed-point format. q may be at most
// n-1 (at least the sign bit must remain integer).
func NewFormat(n, q uint) (Format, error) {
	if n < 2 || n > MaxN {
		return Format{}, fmt.Errorf("fixedpoint: n must be in [2,%d], got %d", MaxN, n)
	}
	if q >= n {
		return Format{}, fmt.Errorf("fixedpoint: q must be < n, got q=%d n=%d", q, n)
	}
	return Format{n: n, q: q}, nil
}

// MustFormat panics on invalid parameters.
func MustFormat(n, q uint) Format {
	f, err := NewFormat(n, q)
	if err != nil {
		panic(err)
	}
	return f
}

// N returns the total width.
func (f Format) N() uint { return f.n }

// Q returns the number of fraction bits.
func (f Format) Q() uint { return f.q }

func (f Format) valid() bool { return f.n >= 2 }

func (f Format) mustValid() {
	if !f.valid() {
		panic("fixedpoint: zero Format; use NewFormat")
	}
}

// MaxInt returns the largest stored integer, 2^(n-1) - 1.
func (f Format) MaxInt() int64 { return int64(1)<<(f.n-1) - 1 }

// MinInt returns the smallest stored integer, -2^(n-1).
func (f Format) MinInt() int64 { return -(int64(1) << (f.n - 1)) }

// MaxValue returns the largest representable value.
func (f Format) MaxValue() float64 { return math.Ldexp(float64(f.MaxInt()), -int(f.q)) }

// MinPositive returns the smallest positive value, 2^-q (the format ULP).
func (f Format) MinPositive() float64 { return math.Ldexp(1, -int(f.q)) }

// ULP returns the uniform spacing 2^-q.
func (f Format) ULP() float64 { return f.MinPositive() }

// DynamicRangeLog10 returns log10(max/min) = log10(2^(n-1) - 1): the
// paper's dynamic-range metric for the fixed format.
func (f Format) DynamicRangeLog10() float64 { return math.Log10(float64(f.MaxInt())) }

// CeilLog2Ratio returns ceil(log2(max/min)) = ceil(log2(2^(n-1)-1)) = n-1.
func (f Format) CeilLog2Ratio() uint { return bitutil.Clog2(uint64(f.MaxInt())) }

// String renders like "fixed(8,q=4)".
func (f Format) String() string { return fmt.Sprintf("fixed(%d,q=%d)", f.n, f.q) }

// Zero returns the fixed-point zero.
func (f Format) Zero() Fixed { f.mustValid(); return Fixed{f: f} }

// Max returns the largest positive value.
func (f Format) Max() Fixed { f.mustValid(); return Fixed{f: f, v: f.MaxInt()} }

// Min returns the most negative value.
func (f Format) Min() Fixed { f.mustValid(); return Fixed{f: f, v: f.MinInt()} }

// One returns 1.0, saturated if the integer field cannot hold it
// (q == n-1 has no room for 1.0).
func (f Format) One() Fixed { return f.FromFloat64(1) }

// FromRaw wraps a stored integer, saturating into range.
func (f Format) FromRaw(v int64) Fixed {
	f.mustValid()
	if v > f.MaxInt() {
		v = f.MaxInt()
	}
	if v < f.MinInt() {
		v = f.MinInt()
	}
	return Fixed{f: f, v: v}
}

// FromBits reinterprets a raw n-bit two's-complement pattern.
func (f Format) FromBits(b uint64) Fixed {
	f.mustValid()
	return Fixed{f: f, v: bitutil.SignExtend(b, f.n)}
}

// Count returns the number of patterns, 2^n.
func (f Format) Count() uint64 { return uint64(1) << f.n }

// FromFloat64 rounds x to the nearest representable value
// (round-to-nearest-even on the integer grid) and saturates.
func (f Format) FromFloat64(x float64) Fixed {
	f.mustValid()
	if math.IsNaN(x) {
		return f.Zero() // fixed point has no NaN; zero is the least bad
	}
	scaled := math.Ldexp(x, int(f.q))
	r := math.RoundToEven(scaled)
	if r > float64(f.MaxInt()) {
		return f.Max()
	}
	if r < float64(f.MinInt()) {
		return f.Min()
	}
	return Fixed{f: f, v: int64(r)}
}

// FromDyadic rounds an exact dyadic value (RNE on the integer grid,
// saturating). Exactness relies on the dyadic mantissa being odd
// (normalised), which pins the sticky computation.
func (f Format) FromDyadic(d dyadic.D) Fixed {
	f.mustValid()
	if d.IsZero() {
		return f.Zero()
	}
	scaled := d.MulPow2(int(f.q)) // want round(scaled)
	sig, exp, sign := scaled.MantExp()
	finish := func(v int64) Fixed {
		if sign < 0 {
			v = -v
		}
		return f.FromRaw(v)
	}
	if exp >= 0 { // already an integer
		if sig.BitLen()+exp > 62 {
			return finish(int64(1) << 62) // saturates
		}
		return finish(sig.Int64() << uint(exp))
	}
	shift := uint(-exp)
	bl := uint(sig.BitLen())
	if bl > shift+62 {
		return finish(int64(1) << 62)
	}
	kept := uint64(0)
	if bl > shift {
		kept = new(big.Int).Rsh(sig, shift).Uint64()
	}
	var guard bool
	if shift >= 1 && shift <= bl {
		guard = sig.Bit(int(shift-1)) == 1
	}
	// sig is odd, so any shift >= 2 leaves a set bit below the guard.
	sticky := shift >= 2
	return finish(int64(bitutil.RoundNearestEven(kept, guard, sticky)))
}

// Fixed is one fixed-point value: format plus stored integer.
type Fixed struct {
	f Format
	v int64
}

// Format returns the value's format.
func (x Fixed) Format() Format { return x.f }

// Raw returns the stored integer i (value = i × 2^-q).
func (x Fixed) Raw() int64 { return x.v }

// Bits returns the n-bit two's-complement pattern.
func (x Fixed) Bits() uint64 { return uint64(x.v) & bitutil.Mask(x.f.n) }

// IsZero reports x == 0.
func (x Fixed) IsZero() bool { return x.v == 0 }

// Negative reports x < 0.
func (x Fixed) Negative() bool { return x.v < 0 }

// Float64 returns the exact value.
func (x Fixed) Float64() float64 { return math.Ldexp(float64(x.v), -int(x.f.q)) }

// Dyadic returns the exact value.
func (x Fixed) Dyadic() dyadic.D { return dyadic.New(x.v, -int(x.f.q)) }

// Neg returns -x, saturating (the minimum value negates to the maximum).
func (x Fixed) Neg() Fixed { return x.f.FromRaw(-x.v) }

// Abs returns |x|, saturating.
func (x Fixed) Abs() Fixed {
	if x.v < 0 {
		return x.Neg()
	}
	return x
}

// Add returns x+y saturating.
func (x Fixed) Add(y Fixed) Fixed {
	if x.f != y.f {
		panic("fixedpoint: Add across formats")
	}
	return x.f.FromRaw(x.v + y.v)
}

// Sub returns x-y saturating.
func (x Fixed) Sub(y Fixed) Fixed {
	if x.f != y.f {
		panic("fixedpoint: Sub across formats")
	}
	return x.f.FromRaw(x.v - y.v)
}

// Mul returns x*y with the paper's post-shift truncation (shift right by
// q, truncate toward negative infinity) and saturation.
func (x Fixed) Mul(y Fixed) Fixed {
	if x.f != y.f {
		panic("fixedpoint: Mul across formats")
	}
	prod := x.v * y.v // exact: 2n <= 60 bits
	return x.f.FromRaw(prod >> x.f.q)
}

// MulRNE returns x*y with round-to-nearest-even after the shift
// (the ablation alternative).
func (x Fixed) MulRNE(y Fixed) Fixed {
	if x.f != y.f {
		panic("fixedpoint: MulRNE across formats")
	}
	prod := x.v * y.v
	return x.f.FromRaw(shiftRNE(prod, x.f.q))
}

// shiftRNE arithmetic-shifts v right by s with round-to-nearest-even.
func shiftRNE(v int64, s uint) int64 {
	if s == 0 {
		return v
	}
	kept := v >> s
	guard := (v>>(s-1))&1 == 1
	var sticky bool
	if s >= 2 {
		sticky = v&int64(bitutil.Mask(s-1)) != 0
	}
	if guard && (sticky || kept&1 == 1) {
		kept++
	}
	return kept
}

// Cmp orders values numerically.
func (x Fixed) Cmp(y Fixed) int {
	if x.f != y.f {
		panic("fixedpoint: Cmp across formats")
	}
	switch {
	case x.v < y.v:
		return -1
	case x.v > y.v:
		return 1
	default:
		return 0
	}
}

// String renders the value.
func (x Fixed) String() string {
	return fmt.Sprintf("%s[%d]=%g", x.f, x.v, x.Float64())
}

// AccumSize returns the paper's eq. (3) width for the fixed EMAC:
// wa = ceil(log2 k) + 2(n-1) + 2.
func AccumSize(f Format, k int) uint {
	if k < 1 {
		panic("fixedpoint: accumulator capacity must be >= 1")
	}
	return bitutil.Clog2(uint64(k)) + 2*f.CeilLog2Ratio() + 2
}

// Accumulator is the fixed-point EMAC register (Fig. 3): 2n-bit exact
// products accumulate; the result is shifted right by q and truncated (or
// RNE-rounded when the ablation flag is set), then clipped.
type Accumulator struct {
	f        Format
	capacity int
	acc      *wide.Int
	adds     int
	// RoundNearest switches the post-shift truncation (paper default)
	// to round-to-nearest-even.
	RoundNearest bool
}

// NewAccumulator returns an empty accumulator sized by eq. (3).
func NewAccumulator(f Format, k int) *Accumulator {
	f.mustValid()
	return &Accumulator{f: f, capacity: k, acc: wide.New(AccumSize(f, k))}
}

// Format returns the accumulated format.
func (a *Accumulator) Format() Format { return a.f }

// Capacity returns the sized-for count.
func (a *Accumulator) Capacity() int { return a.capacity }

// Width returns the register width.
func (a *Accumulator) Width() uint { return a.acc.Width() }

// Adds returns accumulations since reset.
func (a *Accumulator) Adds() int { return a.adds }

// Reset clears the register.
func (a *Accumulator) Reset() {
	a.acc.SetZero()
	a.adds = 0
}

// ResetToBias preloads the register with the bias (at product scale 2^-2q:
// the bias is shifted left by q so it aligns with accumulated products).
func (a *Accumulator) ResetToBias(bias Fixed) {
	if bias.f != a.f {
		panic("fixedpoint: accumulator format mismatch")
	}
	a.Reset()
	mag, neg := bitutil.AbsInt(bias.v)
	if neg {
		a.acc.SubUint64Shifted(mag, a.f.q)
	} else {
		a.acc.AddUint64Shifted(mag, a.f.q)
	}
}

// MulAdd accumulates the exact 2n-bit product w × x.
func (a *Accumulator) MulAdd(w, x Fixed) {
	if w.f != a.f || x.f != a.f {
		panic("fixedpoint: accumulator format mismatch")
	}
	a.adds++
	prod := w.v * x.v
	mag, neg := bitutil.AbsInt(prod)
	if neg {
		a.acc.SubUint64Shifted(mag, 0)
	} else {
		a.acc.AddUint64Shifted(mag, 0)
	}
}

// Result shifts the register right by q (aligning the 2q-fraction product
// scale back to q), truncates or rounds, and clips to n bits.
func (a *Accumulator) Result() Fixed {
	// Registers up to 64 bits (every paper configuration: eq. (3) stays
	// under 64 until n > 23 at k = 256) read out through one
	// sign-extended machine word with no heap traffic; resultBig is the
	// arbitrary-width reference, and the two are cross-checked in the
	// tests.
	if w := a.acc.Width(); w <= 64 {
		v := bitutil.SignExtend(a.acc.Extract(0, w), w)
		if a.RoundNearest {
			return a.f.FromRaw(shiftRNE(v, a.f.q))
		}
		return a.f.FromRaw(v >> a.f.q)
	}
	return a.resultBig()
}

// resultBig is Result for registers beyond 64 bits (and the readout
// oracle for the word-sized fast path).
func (a *Accumulator) resultBig() Fixed {
	v := a.acc.Big()
	// register holds value × 2^2q; target integer = value × 2^q
	if a.RoundNearest {
		d := dyadic.FromBig(v, -2*int(a.f.q))
		return a.f.FromDyadic(d)
	}
	// truncation toward negative infinity (arithmetic shift), per paper;
	// big.Int.Rsh is a floor shift, matching hardware truncation.
	shifted := new(big.Int).Rsh(v, a.f.q)
	if !shifted.IsInt64() {
		if v.Sign() < 0 {
			return a.f.Min()
		}
		return a.f.Max()
	}
	return a.f.FromRaw(shifted.Int64())
}

// Dyadic returns the exact register value (value scale, oracle hook).
func (a *Accumulator) Dyadic() dyadic.D {
	return dyadic.FromBig(a.acc.Big(), -2*int(a.f.q))
}

// DotProduct computes the exact dot product with a single
// truncate-and-clip at the end (paper semantics).
func DotProduct(w, x []Fixed) Fixed {
	if len(w) != len(x) {
		panic("fixedpoint: DotProduct length mismatch")
	}
	if len(w) == 0 {
		panic("fixedpoint: DotProduct of empty vectors")
	}
	a := NewAccumulator(w[0].f, len(w))
	for i := range w {
		a.MulAdd(w[i], x[i])
	}
	return a.Result()
}
