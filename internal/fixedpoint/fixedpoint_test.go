package fixedpoint

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/dyadic"
	"repro/internal/rng"
)

func TestNewFormatValidation(t *testing.T) {
	if _, err := NewFormat(1, 0); err == nil {
		t.Error("n=1 must fail")
	}
	if _, err := NewFormat(33, 4); err == nil {
		t.Error("n>32 must fail")
	}
	if _, err := NewFormat(32, 16); err != nil {
		t.Errorf("n=32 must be accepted: %v", err)
	}
	if _, err := NewFormat(8, 8); err == nil {
		t.Error("q=n must fail")
	}
	if f, err := NewFormat(8, 4); err != nil || f.N() != 8 || f.Q() != 4 {
		t.Error("Q4.4")
	}
}

func TestCharacteristics(t *testing.T) {
	f := MustFormat(8, 4)
	if f.MaxInt() != 127 || f.MinInt() != -128 {
		t.Error("int bounds")
	}
	if f.MaxValue() != 7.9375 {
		t.Errorf("max = %v", f.MaxValue())
	}
	if f.MinPositive() != 0.0625 {
		t.Errorf("min = %v", f.MinPositive())
	}
	if got, want := f.DynamicRangeLog10(), math.Log10(127); got != want {
		t.Errorf("dynamic range %v want %v", got, want)
	}
	if f.CeilLog2Ratio() != 7 {
		t.Errorf("ceil log2 ratio = %d", f.CeilLog2Ratio())
	}
}

func TestRawBitsRoundTrip(t *testing.T) {
	f := MustFormat(8, 4)
	for b := uint64(0); b < f.Count(); b++ {
		x := f.FromBits(b)
		if x.Bits() != b {
			t.Fatalf("bits roundtrip %x -> %x", b, x.Bits())
		}
		if got := f.FromFloat64(x.Float64()); got.Raw() != x.Raw() {
			t.Fatalf("float roundtrip at %d", x.Raw())
		}
		if d := x.Dyadic(); f.FromDyadic(d).Raw() != x.Raw() {
			t.Fatalf("dyadic roundtrip at %d", x.Raw())
		}
	}
}

func TestSaturation(t *testing.T) {
	f := MustFormat(8, 4)
	if got := f.FromFloat64(100); got.Raw() != 127 {
		t.Errorf("saturate high: %v", got)
	}
	if got := f.FromFloat64(-100); got.Raw() != -128 {
		t.Errorf("saturate low: %v", got)
	}
	if got := f.FromRaw(1 << 40); got.Raw() != 127 {
		t.Errorf("FromRaw saturate: %v", got)
	}
	if got := f.Min().Neg(); got.Raw() != 127 {
		t.Errorf("-min must saturate to max: %v", got)
	}
}

func TestFromFloat64RNE(t *testing.T) {
	f := MustFormat(8, 4) // ULP = 1/16
	// 0.03125 = half ULP: ties to even -> 0
	if got := f.FromFloat64(0.03125); got.Raw() != 0 {
		t.Errorf("half ULP -> %d want 0", got.Raw())
	}
	// 3 half-ULPs = 0.09375: between 1 and 2 ULP, tie to even -> 2
	if got := f.FromFloat64(0.09375); got.Raw() != 2 {
		t.Errorf("1.5 ULP -> %d want 2", got.Raw())
	}
	if got := f.FromFloat64(-0.09375); got.Raw() != -2 {
		t.Errorf("-1.5 ULP -> %d want -2", got.Raw())
	}
	if got := f.FromFloat64(math.NaN()); !got.IsZero() {
		t.Error("NaN maps to zero")
	}
}

func TestFromDyadicMatchesFromFloat64(t *testing.T) {
	f := MustFormat(10, 5)
	for x := -20.0; x <= 20.0; x += 0.01171875 { // sweep including ties
		a := f.FromFloat64(x)
		b := f.FromDyadic(dyadic.FromFloat64(x))
		if a.Raw() != b.Raw() {
			t.Fatalf("x=%g: FromFloat64=%d FromDyadic=%d", x, a.Raw(), b.Raw())
		}
	}
}

func TestMulTruncation(t *testing.T) {
	f := MustFormat(8, 4)
	a := f.FromFloat64(1.25) // 20
	b := f.FromFloat64(0.75) // 12
	// product = 240 = 0.9375 in Q8.8; >>4 -> 15 = 0.9375 exact
	if got := a.Mul(b).Float64(); got != 0.9375 {
		t.Errorf("1.25*0.75 = %v", got)
	}
	// truncation bias: 0.0625 * 0.0625 = 2^-8 -> >>4 truncates to 0
	c := f.FromFloat64(0.0625)
	if got := c.Mul(c).Float64(); got != 0 {
		t.Errorf("ulp² must truncate to 0, got %v", got)
	}
	// negative truncation goes toward -inf: -1 raw × 1 raw = -1 >> 4 = -1
	d := f.FromRaw(-1)
	e := f.FromRaw(1)
	if got := d.Mul(e).Raw(); got != -1 {
		t.Errorf("floor truncation: got %d want -1", got)
	}
	// RNE variant rounds the same case to 0
	if got := d.MulRNE(e).Raw(); got != 0 {
		t.Errorf("RNE variant: got %d want 0", got)
	}
}

func TestAddSub(t *testing.T) {
	f := MustFormat(8, 4)
	a := f.FromFloat64(3)
	b := f.FromFloat64(2.5)
	if got := a.Add(b).Float64(); got != 5.5 {
		t.Errorf("3+2.5 = %v", got)
	}
	if got := a.Sub(b).Float64(); got != 0.5 {
		t.Errorf("3-2.5 = %v", got)
	}
	if got := f.Max().Add(f.Max()); got.Raw() != f.MaxInt() {
		t.Error("add must saturate")
	}
}

func TestAccumSize(t *testing.T) {
	// wa = clog2(k) + 2(n-1) + 2
	f := MustFormat(8, 4)
	if got := AccumSize(f, 32); got != 5+14+2 {
		t.Errorf("AccumSize = %d want 21", got)
	}
	if got := AccumSize(f, 1); got != 16 {
		t.Errorf("AccumSize(1) = %d want 16", got)
	}
}

func TestAccumulatorExact(t *testing.T) {
	f := MustFormat(8, 4)
	r := rng.New(5)
	for trial := 0; trial < 300; trial++ {
		k := 1 + r.Intn(64)
		a := NewAccumulator(f, k)
		exact := dyadic.Zero()
		for i := 0; i < k; i++ {
			w := f.FromBits(r.Uint64() & 0xFF)
			x := f.FromBits(r.Uint64() & 0xFF)
			a.MulAdd(w, x)
			exact = exact.Add(w.Dyadic().Mul(x.Dyadic()))
		}
		if got := a.Dyadic(); got.Cmp(exact) != 0 {
			t.Fatalf("register %v != exact %v", got, exact)
		}
		// truncation semantics: floor(exact × 2^q) clipped
		want := truncOracle(f, exact)
		if got := a.Result(); got.Raw() != want {
			t.Fatalf("Result = %d want %d (exact %v)", got.Raw(), want, exact)
		}
	}
}

// truncOracle computes floor(exact × 2^q) with saturation, exactly.
func truncOracle(f Format, exact dyadic.D) int64 {
	sig, exp, sign := exact.MulPow2(int(f.Q())).MantExp()
	if sig == nil {
		return 0
	}
	v := new(big.Int).Set(sig)
	if sign < 0 {
		v.Neg(v)
	}
	if exp >= 0 {
		v.Lsh(v, uint(exp))
	} else {
		v.Rsh(v, uint(-exp)) // big.Int.Rsh floors, matching truncation
	}
	if !v.IsInt64() {
		if sign < 0 {
			return f.MinInt()
		}
		return f.MaxInt()
	}
	q := v.Int64()
	if q > f.MaxInt() {
		return f.MaxInt()
	}
	if q < f.MinInt() {
		return f.MinInt()
	}
	return q
}

func TestAccumulatorBias(t *testing.T) {
	f := MustFormat(8, 4)
	a := NewAccumulator(f, 4)
	bias := f.FromFloat64(1.5)
	a.ResetToBias(bias)
	a.MulAdd(f.FromFloat64(2), f.FromFloat64(1))
	if got := a.Result().Float64(); got != 3.5 {
		t.Errorf("bias + 2 = %v", got)
	}
}

func TestAccumulatorRNEAblation(t *testing.T) {
	f := MustFormat(8, 4)
	a := NewAccumulator(f, 2)
	a.RoundNearest = true
	// ulp × ulp = 2^-8 = quarter of a result ULP -> RNE to 0
	u := f.FromRaw(1)
	a.MulAdd(u, u)
	if got := a.Result().Raw(); got != 0 {
		t.Errorf("RNE tiny = %d", got)
	}
	// 9 × ulp² = 9/256 > ulp/2 = 8/256 -> rounds to 1
	a.Reset()
	for i := 0; i < 9; i++ {
		a.MulAdd(u, u)
	}
	if got := a.Result().Raw(); got != 1 {
		t.Errorf("RNE 9·ulp² = %d want 1", got)
	}
	// truncation gives 0 for the same register value
	b := NewAccumulator(f, 16)
	for i := 0; i < 9; i++ {
		b.MulAdd(u, u)
	}
	if got := b.Result().Raw(); got != 0 {
		t.Errorf("trunc 9·ulp² = %d want 0", got)
	}
}

func TestAccumulatorClip(t *testing.T) {
	f := MustFormat(8, 4)
	a := NewAccumulator(f, 64)
	for i := 0; i < 64; i++ {
		a.MulAdd(f.Max(), f.Max())
	}
	if got := a.Result().Raw(); got != f.MaxInt() {
		t.Errorf("positive clip: %d", got)
	}
	a.Reset()
	for i := 0; i < 64; i++ {
		a.MulAdd(f.Min(), f.Max())
	}
	if got := a.Result().Raw(); got != f.MinInt() {
		t.Errorf("negative clip: %d", got)
	}
}

func TestDotProduct(t *testing.T) {
	f := MustFormat(8, 4)
	w := []Fixed{f.FromFloat64(0.5), f.FromFloat64(-1.25)}
	x := []Fixed{f.FromFloat64(2), f.FromFloat64(0.5)}
	// 1 - 0.625 = 0.375
	if got := DotProduct(w, x).Float64(); got != 0.375 {
		t.Errorf("dot = %v", got)
	}
}

func TestPropMulCommutative(t *testing.T) {
	f := MustFormat(8, 3)
	prop := func(a, b uint8) bool {
		x, y := f.FromBits(uint64(a)), f.FromBits(uint64(b))
		return x.Mul(y).Raw() == y.Mul(x).Raw()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropOrderEmbedding(t *testing.T) {
	f := MustFormat(10, 6)
	prop := func(a, b int16) bool {
		x := f.FromFloat64(float64(a) / 64)
		y := f.FromFloat64(float64(b) / 64)
		return (x.Cmp(y) < 0) == (x.Float64() < y.Float64())
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestOneSaturatesWhenOutOfRange(t *testing.T) {
	f := MustFormat(8, 7) // range [-1, 1)
	if got := f.One(); got.Raw() != f.MaxInt() {
		t.Errorf("One in Q1.7 = %d want saturated max", got.Raw())
	}
}
