package fixedpoint

// DenseKernel is the pre-decoded batched datapath for one dense layer in
// the fixed-point arm: y[j] = round(b[j] + Σ_i W[j][i]·x[i]), one
// truncate-and-clip (or RNE) per output. Weights are sign-extended to
// int64 once at construction and the bias is pre-shifted to the product
// scale 2^-2q; per forward pass the activations are sign-extended once
// into a reused scratch buffer and each row accumulates in a single int64
// register. int64 arithmetic is exact modulo 2^64, so sign-wrapping the
// final sum to the eq.-(3) register width reproduces the wide register's
// residue bit-for-bit (including the wrap a degenerate narrow register
// would perform); the constructor refuses widths beyond 64 bits, where a
// single machine word could no longer carry the residue. Results are
// bit-identical to driving a per-neuron Accumulator through
// ResetToBias/MulAdd/Result — the equivalence tests verify this
// exhaustively.
type DenseKernel struct {
	f            Format
	in, out      int
	w            []int64 // row-major out×in sign-extended raw weights
	b            []int64 // biases pre-shifted left by q (product scale)
	acts         []int64 // activation scratch, sign-extended once per Forward
	wrap         uint    // 64 - AccumSize(f, in): the register emulation shift
	roundNearest bool
}

// NewDenseKernel pre-decodes a row-major weight matrix (out rows of in
// weights) and bias vector of format f. ok is false when the eq.-(3)
// register for this fan-in is wider than 64 bits (callers fall back to
// the per-neuron Accumulator path).
func NewDenseKernel(f Format, w [][]Fixed, b []Fixed, roundNearest bool) (*DenseKernel, bool) {
	f.mustValid()
	out := len(w)
	if out == 0 || len(b) != out || len(w[0]) == 0 {
		return nil, false
	}
	in := len(w[0])
	width := AccumSize(f, in)
	if width > 64 {
		return nil, false
	}
	k := &DenseKernel{
		f:            f,
		in:           in,
		out:          out,
		w:            make([]int64, out*in),
		b:            make([]int64, out),
		acts:         make([]int64, in),
		wrap:         64 - width,
		roundNearest: roundNearest,
	}
	for j, row := range w {
		if len(row) != in {
			panic("fixedpoint: DenseKernel ragged weight matrix")
		}
		dst := k.w[j*in : (j+1)*in]
		for i, v := range row {
			if v.f != f {
				panic("fixedpoint: DenseKernel weight format mismatch")
			}
			dst[i] = v.v
		}
	}
	for j, v := range b {
		if v.f != f {
			panic("fixedpoint: DenseKernel bias format mismatch")
		}
		k.b[j] = v.v << f.q
	}
	return k, true
}

// In returns the layer fan-in.
func (k *DenseKernel) In() int { return k.in }

// Out returns the layer width.
func (k *DenseKernel) Out() int { return k.out }

// Format returns the kernel's fixed-point format.
func (k *DenseKernel) Format() Format { return k.f }

// ForwardBits computes dst[j] = round(b[j] + Σ_i W[j][i]·act[i]) on raw
// n-bit two's-complement patterns. len(act) must equal In() and len(dst)
// must equal Out(). Not safe for concurrent use (the activation scratch
// is reused).
func (k *DenseKernel) ForwardBits(act, dst []uint64) {
	if len(act) != k.in {
		panic("fixedpoint: DenseKernel input size mismatch")
	}
	if len(dst) != k.out {
		panic("fixedpoint: DenseKernel output size mismatch")
	}
	for i, bits := range act {
		k.acts[i] = k.f.FromBits(bits).v
	}
	for j := 0; j < k.out; j++ {
		acc := k.b[j]
		row := k.w[j*k.in : (j+1)*k.in]
		for i, w := range row {
			acc += w * k.acts[i]
		}
		// Sign-wrap to the eq.-(3) register width (the residue the wide
		// register would hold), then shift the product scale 2^2q back to
		// the stored scale with the paper's floor truncation (or the RNE
		// ablation) and clip — exactly Accumulator.Result.
		acc = acc << k.wrap >> k.wrap
		var v int64
		if k.roundNearest {
			v = shiftRNE(acc, k.f.q)
		} else {
			v = acc >> k.f.q
		}
		dst[j] = k.f.FromRaw(v).Bits()
	}
}
