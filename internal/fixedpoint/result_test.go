package fixedpoint

// Cross-check of the word-sized Result fast path against the
// arbitrary-width big.Int readout, over random accumulation streams for
// every register width the paper's configurations produce.

import (
	"testing"

	"repro/internal/rng"
)

func TestResultFastMatchesBig(t *testing.T) {
	r := rng.New(91)
	for _, cfg := range []struct {
		n, q uint
		k    int
	}{
		{8, 4, 1}, {8, 1, 32}, {8, 7, 256}, {5, 2, 16},
		{12, 6, 64}, {16, 8, 1024}, {23, 11, 256},
	} {
		f := MustFormat(cfg.n, cfg.q)
		if AccumSize(f, cfg.k) > 64 {
			t.Fatalf("%s k=%d: register %d bits exceeds the fast path", f, cfg.k, AccumSize(f, cfg.k))
		}
		for _, rne := range []bool{false, true} {
			a := NewAccumulator(f, cfg.k)
			a.RoundNearest = rne
			for trial := 0; trial < 200; trial++ {
				a.ResetToBias(f.FromBits(r.Uint64() & (f.Count() - 1)))
				steps := 1 + int(r.Uint64()%uint64(cfg.k))
				for s := 0; s < steps; s++ {
					a.MulAdd(f.FromBits(r.Uint64()&(f.Count()-1)), f.FromBits(r.Uint64()&(f.Count()-1)))
				}
				fast, big := a.Result(), a.resultBig()
				if fast.Bits() != big.Bits() {
					t.Fatalf("%s rne=%v trial %d: fast %#x != big %#x", f, rne, trial, fast.Bits(), big.Bits())
				}
			}
		}
	}
}
