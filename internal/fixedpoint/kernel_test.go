package fixedpoint

// Equivalence tests for the pre-decoded layer kernel: the int64 fast path
// must be bit-identical to the per-neuron Accumulator reference over the
// ENTIRE operand space for the paper's 8-bit format (both rounding arms),
// exhaustively for every small format, and on random multi-term layers.
// Style mirrors internal/posit/table_test.go.

import (
	"testing"

	"repro/internal/rng"
)

// macBits drives the reference per-neuron path for one (w, x, bias).
func macBits(f Format, w, x, b Fixed, rne bool) uint64 {
	a := NewAccumulator(f, 1)
	a.RoundNearest = rne
	a.ResetToBias(b)
	a.MulAdd(w, x)
	return a.Result().Bits()
}

// allPatternsKernel builds a 2^n-row, fan-in-1 kernel whose row j holds
// weight pattern j, so one ForwardBits sweeps every weight against one
// activation.
func allPatternsKernel(t *testing.T, f Format, bias Fixed, rne bool) *DenseKernel {
	t.Helper()
	count := int(f.Count())
	w := make([][]Fixed, count)
	b := make([]Fixed, count)
	for j := 0; j < count; j++ {
		w[j] = []Fixed{f.FromBits(uint64(j))}
		b[j] = bias
	}
	k, ok := NewDenseKernel(f, w, b, rne)
	if !ok {
		t.Fatalf("%s: no fast path for fan-in 1", f)
	}
	return k
}

func sweepPairs(t *testing.T, f Format, bias Fixed, rne bool) {
	t.Helper()
	k := allPatternsKernel(t, f, bias, rne)
	count := f.Count()
	act := make([]uint64, 1)
	dst := make([]uint64, count)
	for x := uint64(0); x < count; x++ {
		act[0] = x
		k.ForwardBits(act, dst)
		xf := f.FromBits(x)
		for wbits := uint64(0); wbits < count; wbits++ {
			ref := macBits(f, f.FromBits(wbits), xf, bias, rne)
			if dst[wbits] != ref {
				t.Fatalf("%s rne=%v bias=%v: w=%#x x=%#x kernel %#x != mac %#x",
					f, rne, bias, wbits, x, dst[wbits], ref)
			}
		}
	}
}

// TestKernelExhaustive8Bit: every (weight, activation) pair of the
// paper's fixed(8,q) formats through the kernel vs the MAC reference,
// with zero, saturated and mid-scale biases, truncation and RNE arms.
func TestKernelExhaustive8Bit(t *testing.T) {
	f := MustFormat(8, 4)
	biases := []Fixed{f.Zero(), f.Max(), f.Min(), f.FromFloat64(0.8125)}
	for _, bias := range biases {
		for _, rne := range []bool{false, true} {
			sweepPairs(t, f, bias, rne)
		}
	}
	// Extreme fraction splits at n = 8, one bias each.
	for _, q := range []uint{1, 7} {
		fq := MustFormat(8, q)
		sweepPairs(t, fq, fq.FromFloat64(-0.5), false)
		sweepPairs(t, fq, fq.FromFloat64(0.25), true)
	}
}

// TestKernelExhaustiveSmall: all (w, x) pairs of every format with
// n <= 6, every q, both rounding arms, one nonzero bias.
func TestKernelExhaustiveSmall(t *testing.T) {
	for n := uint(2); n <= 6; n++ {
		for q := uint(1); q < n; q++ {
			f := MustFormat(n, q)
			bias := f.FromFloat64(-0.75)
			for _, rne := range []bool{false, true} {
				sweepPairs(t, f, bias, rne)
			}
		}
	}
}

// TestKernelRandomLayers: multi-term rows (the int64 register carries
// real accumulation, not just one product) against per-neuron
// accumulators, across widths and fraction splits.
func TestKernelRandomLayers(t *testing.T) {
	r := rng.New(77)
	for _, cfg := range []struct{ n, q uint }{{8, 4}, {8, 2}, {7, 3}, {12, 6}, {16, 8}} {
		f := MustFormat(cfg.n, cfg.q)
		const in, out = 30, 16
		w := make([][]Fixed, out)
		b := make([]Fixed, out)
		for j := range w {
			row := make([]Fixed, in)
			for i := range row {
				row[i] = f.FromBits(r.Uint64() & (f.Count() - 1))
			}
			w[j] = row
			b[j] = f.FromBits(r.Uint64() & (f.Count() - 1))
		}
		for _, rne := range []bool{false, true} {
			k, ok := NewDenseKernel(f, w, b, rne)
			if !ok {
				t.Fatalf("%s: no fast path at fan-in %d", f, in)
			}
			act := make([]uint64, in)
			dst := make([]uint64, out)
			for trial := 0; trial < 50; trial++ {
				for i := range act {
					act[i] = r.Uint64() & (f.Count() - 1)
				}
				k.ForwardBits(act, dst)
				for j := 0; j < out; j++ {
					a := NewAccumulator(f, in)
					a.RoundNearest = rne
					a.ResetToBias(b[j])
					for i := range act {
						a.MulAdd(w[j][i], f.FromBits(act[i]))
					}
					if ref := a.Result().Bits(); dst[j] != ref {
						t.Fatalf("%s rne=%v trial %d row %d: kernel %#x != mac %#x",
							f, rne, trial, j, dst[j], ref)
					}
				}
			}
		}
	}
}

// TestKernelRefusesOversizedRegister: configurations whose eq.-(3)
// register exceeds 64 bits must decline the fast path (the int64 residue
// could no longer emulate the wide register).
func TestKernelRefusesOversizedRegister(t *testing.T) {
	f := MustFormat(32, 16)
	w := [][]Fixed{{f.One(), f.One()}} // AccumSize(32-bit, 2) = 65
	b := []Fixed{f.Zero()}
	if _, ok := NewDenseKernel(f, w, b, false); ok {
		t.Fatal("32-bit format accepted an int64 accumulator at fan-in 2")
	}
	// At fan-in 1 the 32-bit register is exactly 64 bits and still fits.
	if _, ok := NewDenseKernel(f, [][]Fixed{{f.One()}}, b[:1], false); !ok {
		t.Fatal("32-bit fan-in-1 register (64 bits) refused")
	}
	// n = 16 fits comfortably even at large fan-in.
	f16 := MustFormat(16, 8)
	row := make([]Fixed, 1<<10)
	for i := range row {
		row[i] = f16.One()
	}
	if _, ok := NewDenseKernel(f16, [][]Fixed{row}, []Fixed{f16.Zero()}, false); !ok {
		t.Fatal("16-bit format refused a fitting accumulator")
	}
}
