package positron

import (
	"testing"
)

// The facade tests exercise the public API exactly as the examples do.

func TestFacadePositRoundTrip(t *testing.T) {
	f := MustPositFormat(8, 0)
	p := f.FromFloat64(1.5)
	if p.Float64() != 1.5 {
		t.Fatalf("posit(8,0) 1.5 -> %g", p.Float64())
	}
	if got := p.Mul(f.FromFloat64(2)).Float64(); got != 3 {
		t.Fatalf("1.5*2 = %g", got)
	}
}

func TestFacadeQuire(t *testing.T) {
	f := MustPositFormat(8, 1)
	q := NewQuire(f, 4)
	for i := 0; i < 4; i++ {
		q.MulAdd(f.FromFloat64(0.5), f.FromFloat64(0.5))
	}
	if got := q.Result().Float64(); got != 1 {
		t.Fatalf("4 × 0.25 = %g", got)
	}
	w := []Posit{f.FromFloat64(1), f.FromFloat64(2)}
	a := []Posit{f.FromFloat64(3), f.FromFloat64(-1)}
	if got := PositDot(w, a).Float64(); got != 1 {
		t.Fatalf("dot = %g", got)
	}
}

func TestFacadeFormats(t *testing.T) {
	if _, err := NewPositFormat(2, 0); err == nil {
		t.Error("invalid posit format accepted")
	}
	if _, err := NewFloatFormat(4, 3); err != nil {
		t.Error(err)
	}
	if _, err := NewFixedFormat(8, 4); err != nil {
		t.Error(err)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	train, test := IrisSplit(42)
	strain, stest := Standardize(train, test)
	net := NewMLP([]int{4, 8, 3}, 1)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 40
	Train(net, strain, cfg)
	ref := Accuracy(net, stest)
	dp := QuantizeNetwork(net, PositArith(8, 0))
	acc := dp.Accuracy(stest)
	if acc < ref-0.1 {
		t.Errorf("posit(8,0) %.3f far below float64 %.3f", acc, ref)
	}
	// hardware costing through the facade
	rep, ok := Synthesize(PositArith(8, 0), 16)
	if !ok || rep.FMaxMHz <= 0 {
		t.Fatal("Synthesize failed")
	}
	cost := NetworkCost(rep, dp)
	if cost.LatencyNs <= 0 || cost.EnergyJ <= 0 {
		t.Error("degenerate network cost")
	}
	if _, ok := Synthesize(Float32Baseline(), 16); ok {
		t.Error("float32 baseline must not synthesize")
	}
}

func TestFacadeBestConfig(t *testing.T) {
	train, test := IrisSplit(42)
	strain, stest := Standardize(train, test)
	net := NewMLP([]int{4, 8, 3}, 1)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 30
	Train(net, strain, cfg)
	posits, floats, fixeds := Candidates(8)
	if len(posits) == 0 || len(floats) == 0 || len(fixeds) == 0 {
		t.Fatal("empty candidate sets")
	}
	best := BestConfig(net, stest, posits)
	if best.Accuracy < 0.5 {
		t.Errorf("best posit accuracy %.3f", best.Accuracy)
	}
}
