package positron

import (
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The facade tests exercise the public API exactly as the examples do.

func TestFacadePositRoundTrip(t *testing.T) {
	f := MustPositFormat(8, 0)
	p := f.FromFloat64(1.5)
	if p.Float64() != 1.5 {
		t.Fatalf("posit(8,0) 1.5 -> %g", p.Float64())
	}
	if got := p.Mul(f.FromFloat64(2)).Float64(); got != 3 {
		t.Fatalf("1.5*2 = %g", got)
	}
}

func TestFacadeQuire(t *testing.T) {
	f := MustPositFormat(8, 1)
	q := NewQuire(f, 4)
	for i := 0; i < 4; i++ {
		q.MulAdd(f.FromFloat64(0.5), f.FromFloat64(0.5))
	}
	if got := q.Result().Float64(); got != 1 {
		t.Fatalf("4 × 0.25 = %g", got)
	}
	w := []Posit{f.FromFloat64(1), f.FromFloat64(2)}
	a := []Posit{f.FromFloat64(3), f.FromFloat64(-1)}
	if got := PositDot(w, a).Float64(); got != 1 {
		t.Fatalf("dot = %g", got)
	}
}

func TestFacadeFormats(t *testing.T) {
	if _, err := NewPositFormat(2, 0); err == nil {
		t.Error("invalid posit format accepted")
	}
	if _, err := NewFloatFormat(4, 3); err != nil {
		t.Error(err)
	}
	if _, err := NewFixedFormat(8, 4); err != nil {
		t.Error(err)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	train, test := IrisSplit(42)
	strain, stest := Standardize(train, test)
	net := NewMLP([]int{4, 8, 3}, 1)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 40
	Train(net, strain, cfg)
	ref := Accuracy(net, stest)
	dp := QuantizeNetwork(net, PositArith(8, 0))
	acc := dp.Accuracy(stest)
	if acc < ref-0.1 {
		t.Errorf("posit(8,0) %.3f far below float64 %.3f", acc, ref)
	}
	// hardware costing through the facade
	rep, ok := Synthesize(PositArith(8, 0), 16)
	if !ok || rep.FMaxMHz <= 0 {
		t.Fatal("Synthesize failed")
	}
	cost := NetworkCost(rep, dp)
	if cost.LatencyNs <= 0 || cost.EnergyJ <= 0 {
		t.Error("degenerate network cost")
	}
	if _, ok := Synthesize(Float32Baseline(), 16); ok {
		t.Error("float32 baseline must not synthesize")
	}
}

func TestFacadeBestConfig(t *testing.T) {
	train, test := IrisSplit(42)
	strain, stest := Standardize(train, test)
	net := NewMLP([]int{4, 8, 3}, 1)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 30
	Train(net, strain, cfg)
	posits, floats, fixeds := Candidates(8)
	if len(posits) == 0 || len(floats) == 0 || len(fixeds) == 0 {
		t.Fatal("empty candidate sets")
	}
	best := BestConfig(net, stest, posits)
	if best.Accuracy < 0.5 {
		t.Errorf("best posit accuracy %.3f", best.Accuracy)
	}
}

// TestFacadeServingPath walks the deployment story end to end through
// the public API: train, quantise (mixed precision), save the versioned
// artifact, reload it behind Model, and serve it with a context-aware
// Runtime — bit-identical to a serial Inferer.
func TestFacadeServingPath(t *testing.T) {
	train, test := IrisSplit(42)
	std := FitStandardizer(train)
	net := NewMLP([]int{4, 8, 3}, 1)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 30
	Train(net, std.Apply(train), cfg)

	mixed := QuantizeMixed(net, []Arithmetic{PositArith(8, 0), FixedArith(8, 4)})
	mixed.Stand = std // serve raw features
	path := filepath.Join(t.TempDir(), "iris-mixed.json")
	if err := mixed.Save(path); err != nil {
		t.Fatal(err)
	}
	model, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if model.Kind() != "mixed" || model.InputDim() != 4 || model.OutputDim() != 3 {
		t.Fatalf("model metadata: %s %s", model.Kind(), model)
	}

	rt, err := NewRuntime(model, WithWorkers(4), WithWarmTables(), WithQueueDepth(16))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rt.InferBatch(context.Background(), test.X)
	if err != nil {
		t.Fatal(err)
	}
	serial := model.NewInferer()
	for i, x := range test.X {
		want := serial.Infer(x)
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("sample %d logit %d: runtime %v != inferer %v", i, j, got[i][j], want[j])
			}
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Submit(context.Background(), 0, test.X[0]); !errors.Is(err, ErrRuntimeClosed) {
		t.Fatalf("Submit after Close = %v, want ErrRuntimeClosed", err)
	}

	// The deprecated engine shim still compiles and serves.
	uni := QuantizeNetwork(net, PositArith(8, 0))
	e := NewEngine(uni, 2)
	defer e.Close()
	if out := e.InferBatch(test.X[:5]); len(out) != 5 {
		t.Fatalf("engine shim returned %d results", len(out))
	}
}

// TestFacadeRegistryServing walks the multi-model serving story through
// the public API: two models (posit8 uniform + mixed) in one registry,
// micro-batched inference bit-identical to a serial Inferer, metrics,
// and graceful unload.
func TestFacadeRegistryServing(t *testing.T) {
	train, test := IrisSplit(42)
	std := FitStandardizer(train)
	net := NewMLP([]int{4, 8, 3}, 1)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 30
	Train(net, std.Apply(train), cfg)

	uni := QuantizeNetwork(net, PositArith(8, 0))
	uni.Stand = std
	mixed := QuantizeMixed(net, []Arithmetic{PositArith(8, 0), FixedArith(8, 4)})
	mixed.Stand = std

	reg := NewRegistry(
		WithRuntimeOptions(WithWorkers(2), WithWarmTables()),
		WithBatchWindow(2*time.Millisecond),
		WithMaxBatch(16),
	)
	defer reg.Close()
	if err := reg.Load("posit8", uni); err != nil {
		t.Fatal(err)
	}
	if err := reg.Load("mixed", mixed); err != nil {
		t.Fatal(err)
	}
	if err := reg.Load("posit8", uni); !errors.Is(err, ErrModelExists) {
		t.Fatalf("duplicate load: %v", err)
	}

	for _, name := range []string{"posit8", "mixed"} {
		h, err := reg.Acquire(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.Batcher().Infer(context.Background(), test.X[0])
		if err != nil {
			t.Fatal(err)
		}
		want := h.Model().NewInferer().Infer(test.X[0])
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s logit %d: batched %v != serial %v", name, j, got[j], want[j])
			}
		}
		h.Release()
	}

	stats := reg.Stats()
	if len(stats) != 2 || stats[0].Name != "mixed" || stats[1].Name != "posit8" {
		t.Fatalf("stats: %+v", stats)
	}
	if stats[0].Metrics.Requests != 1 {
		t.Fatalf("mixed metrics: %+v", stats[0].Metrics)
	}

	if err := reg.Unload("mixed"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Acquire("mixed"); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("acquire after unload: %v", err)
	}

	// The HTTP surface is public too.
	srv := NewServer(reg, "posit8")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/models", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"posit8"`) {
		t.Fatalf("/v1/models = %d %s", rec.Code, rec.Body.String())
	}
}

// TestFacadeParseArithmetic pins the CLI-facing spec grammar.
func TestFacadeParseArithmetic(t *testing.T) {
	for spec, want := range map[string]string{
		"posit(8,0)":   "posit(8,0)",
		"float(8,4)":   "float(8: we=4,wf=3)",
		"fixed(8,4)":   "fixed(8,q=4)",
		"fixed(8,q=4)": "fixed(8,q=4)",
		"float32":      "float32",
	} {
		a, err := ParseArithmetic(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if a.Name() != want {
			t.Fatalf("%s -> %s, want %s", spec, a.Name(), want)
		}
	}
	for _, bad := range []string{
		"posit(2,0)", "float(8,9)", "quaternion(8)", "",
		"posit(8,0)x", "fixed(8,4)garbage", "float32x",
	} {
		if _, err := ParseArithmetic(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}
