// Package positron is the public API of the Deep Positron reproduction:
// a Go implementation of "Deep Positron: A Deep Neural Network Using the
// Posit Number System" (Carmichael et al., DATE 2019).
//
// It exposes five layers of the system:
//
//   - Number formats: arbitrary posit(n,es) arithmetic (with the quire),
//     parameterised minifloats, and Q-format fixed point — all bit-exact.
//   - EMACs: the paper's exact multiply-and-accumulate units for all
//     three formats behind one Arithmetic interface.
//   - Deep Positron: quantised feed-forward inference built from EMACs,
//     plus float64 training to produce the networks.
//   - Serving: the Model interface (uniform and mixed-precision networks
//     behind versioned JSON and binary artifacts, content-addressed by
//     SHA-256 into a pluggable store) and the context-aware
//     worker-pool Runtime; cmd/positrond serves any artifact over HTTP,
//     and the Router tier fronts many positrond replicas with circuit
//     breakers, retries and health-aware proxying (chaos-tested via the
//     deterministic FaultInjector).
//   - Evaluation: the analytic Virtex-7 hardware model and harnesses
//     regenerating every table and figure of the paper.
//
// See the runnable programs under examples/ for end-to-end usage.
package positron

import (
	"time"

	"repro/internal/artifact"
	"repro/internal/artifact/store"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/emac"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/fixedpoint"
	"repro/internal/hw"
	"repro/internal/minifloat"
	"repro/internal/nn"
	"repro/internal/posit"
	"repro/internal/registry"
	"repro/internal/rng"
	"repro/internal/router"
	"repro/internal/server"
)

// --- posit numbers ---

// PositFormat identifies a posit format by width n and exponent size es.
type PositFormat = posit.Format

// Posit is a single posit value.
type Posit = posit.Posit

// Quire is the posit Kulisch accumulator (paper eq. (4)).
type Quire = posit.Quire

// NewPositFormat validates and returns a posit(n, es) format.
func NewPositFormat(n, es uint) (PositFormat, error) { return posit.NewFormat(n, es) }

// MustPositFormat panics on invalid parameters.
func MustPositFormat(n, es uint) PositFormat { return posit.MustFormat(n, es) }

// NewQuire returns an empty quire for k accumulations.
func NewQuire(f PositFormat, k int) *Quire { return posit.NewQuire(f, k) }

// PositDot computes the exactly rounded posit dot product (one rounding).
func PositDot(w, a []Posit) Posit { return posit.DotProduct(w, a) }

// PositVector is a posit slice with quire-exact kernels (Dot, Norm2, Sum).
type PositVector = posit.Vector

// PositMatrix is a dense posit matrix with one-rounding-per-element
// products.
type PositMatrix = posit.Matrix

// NewPositVector quantises a float64 slice.
func NewPositVector(f PositFormat, xs []float64) PositVector { return posit.NewVector(f, xs) }

// NewPositMatrix quantises a row-major float64 matrix.
func NewPositMatrix(f PositFormat, rows, cols int, xs []float64) *PositMatrix {
	return posit.NewMatrix(f, rows, cols, xs)
}

// WarmPositTables eagerly builds the decode and Mul/Add fast-path tables
// for a format (otherwise built lazily on first use), so the first
// inference pays no table-construction latency.
func WarmPositTables(f PositFormat) { posit.WarmTables(f) }

// PositTableMemoryBytes reports the memory the fast-path tables for a
// format occupy once built (0 for formats too wide to table).
func PositTableMemoryBytes(f PositFormat) int { return posit.TableMemoryBytes(f) }

// StandardPosit8 returns posit(8,2), the 2022-standard 8-bit format.
func StandardPosit8() PositFormat { return posit.Posit8() }

// StandardPosit16 returns posit(16,2).
func StandardPosit16() PositFormat { return posit.Posit16() }

// StandardPosit32 returns posit(32,2).
func StandardPosit32() PositFormat { return posit.Posit32() }

// --- minifloat / fixed point ---

// FloatFormat is a parameterised IEEE-style minifloat (1, we, wf).
type FloatFormat = minifloat.Format

// Float is a minifloat value.
type Float = minifloat.Float

// NewFloatFormat validates and returns a float format.
func NewFloatFormat(we, wf uint) (FloatFormat, error) { return minifloat.NewFormat(we, wf) }

// FixedFormat is a Q-format fixed-point layout (n total, q fraction bits).
type FixedFormat = fixedpoint.Format

// Fixed is a fixed-point value.
type Fixed = fixedpoint.Fixed

// NewFixedFormat validates and returns a fixed format.
func NewFixedFormat(n, q uint) (FixedFormat, error) { return fixedpoint.NewFormat(n, q) }

// --- EMACs ---

// Arithmetic bundles a number format with its codec and EMAC factory.
type Arithmetic = emac.Arithmetic

// MAC is one exact multiply-and-accumulate unit (Reset/Step/Result).
type MAC = emac.MAC

// Code is a quantised scalar in an Arithmetic's wire format.
type Code = emac.Code

// PositArith returns the posit EMAC arm (paper Fig. 5).
func PositArith(n, es uint) Arithmetic { return emac.NewPosit(n, es) }

// FloatArith returns the minifloat EMAC arm (paper Fig. 4) for an n-bit
// format with we exponent bits.
func FloatArith(n, we uint) Arithmetic { return emac.NewFloatN(n, we) }

// FixedArith returns the fixed-point EMAC arm (paper Fig. 3).
func FixedArith(n, q uint) Arithmetic { return emac.NewFixed(n, q) }

// Float32Baseline returns the paper's 32-bit float reference arm (a
// deliberately inexact sequential MAC).
func Float32Baseline() Arithmetic { return emac.Float32Arith{} }

// --- training substrate ---

// MLP is a float64 feed-forward network (ReLU hidden, affine readout).
type MLP = nn.Network

// TrainConfig parameterises SGD with momentum.
type TrainConfig = nn.TrainConfig

// Dataset is a dense classification dataset.
type Dataset = datasets.Dataset

// NewMLP builds a Xavier-initialised MLP with the given layer sizes,
// deterministically from the seed.
func NewMLP(sizes []int, seed uint64) *MLP { return nn.NewMLP(sizes, rng.New(seed)) }

// DefaultTrainConfig returns the experiments' training configuration.
func DefaultTrainConfig() TrainConfig { return nn.DefaultTrainConfig() }

// Train fits the network with SGD+momentum on softmax cross-entropy.
func Train(net *MLP, ds *Dataset, cfg TrainConfig) { nn.Train(net, ds, cfg) }

// Accuracy evaluates float64 accuracy.
func Accuracy(net *MLP, ds *Dataset) float64 { return nn.Accuracy(net, ds) }

// Accuracy32 evaluates the float32 baseline accuracy.
func Accuracy32(net *MLP, ds *Dataset) float64 { return nn.Accuracy32(net, ds) }

// --- Deep Positron ---

// DeepPositron is a quantised network running on EMACs.
type DeepPositron = core.Network

// MixedPrecision is a Deep Positron variant with one arithmetic per layer
// (format-conversion units at layer boundaries).
type MixedPrecision = core.MixedNetwork

// StreamStats summarises a cycle-level streaming run (latency, initiation
// interval, throughput).
type StreamStats = core.StreamStats

// QuantizeNetwork lowers a trained MLP into the target arithmetic.
func QuantizeNetwork(net *MLP, a Arithmetic) *DeepPositron { return core.Quantize(net, a) }

// QuantizeMixed lowers a trained MLP with one arithmetic per layer.
func QuantizeMixed(net *MLP, ariths []Arithmetic) *MixedPrecision {
	return core.QuantizeMixed(net, ariths)
}

// Model is the unified model plane implemented by both *DeepPositron
// (uniform precision) and *MixedPrecision (per-layer precision):
// topology, per-layer arithmetic descriptors, the optional folded input
// standardizer, session construction (NewInferer) and versioned
// Save/Load. Everything downstream — the Runtime, the positrond HTTP
// daemon — programs against Model, so which precision layout a
// deployment picked is a property of the artifact, not of the serving
// code.
type Model = core.Model

// Inferer is one per-goroutine execution plane over a Model: the common
// surface of Session and MixedSession (Infer, allocation-free InferInto,
// Predict, Accuracy).
type Inferer = core.Inferer

// LoadModel reads any versioned model artifact — uniform or mixed — and
// returns it behind the Model interface. The artifact records its
// version; files from newer format revisions are rejected with an error.
func LoadModel(path string) (Model, error) { return core.LoadModel(path) }

// ParseArithmetic parses a human-readable arithmetic spec: "posit(n,es)",
// "float(n,we)", "fixed(n,q)" or "float32".
func ParseArithmetic(spec string) (Arithmetic, error) { return core.ParseArith(spec) }

// LoadDeepPositron reads a uniform-precision quantised model saved with
// DeepPositron.Save — the deployment artifact (format descriptor plus raw
// weight/bias codes). Use LoadModel when the artifact may be mixed
// precision.
func LoadDeepPositron(path string) (*DeepPositron, error) { return core.Load(path) }

// SearchPerLayerFixed optimises per-layer fixed-point fraction widths by
// coordinate descent at total width n, returning the mixed network and
// the chosen q per layer.
func SearchPerLayerFixed(net *MLP, test *Dataset, n uint) (*MixedPrecision, []uint) {
	return core.SearchPerLayerFixed(net, test, n)
}

// --- inference sessions and the batch engine ---

// Session is the per-goroutine execution plane for a DeepPositron: EMAC
// banks, pre-decoded layer kernels and activation scratch. The network
// itself is immutable, so any number of sessions (one per goroutine,
// via DeepPositron.NewSession) can share it.
type Session = core.Session

// MixedSession is the execution plane for a MixedPrecision network.
type MixedSession = core.MixedSession

// Runtime is the serving-grade inference plane: a worker pool in which
// every worker owns one shared-nothing Inferer over one immutable Model
// (uniform or mixed precision alike). Its methods observe context
// cancellation and return errors instead of panicking: InferBatch(ctx),
// PredictBatch(ctx), Accuracy(ctx), Submit(ctx, id, x) and Close — after
// which late submissions get ErrRuntimeClosed, and in-flight results are
// never dropped.
type Runtime = engine.Runtime

// RuntimeOption configures a Runtime at construction (functional
// options).
type RuntimeOption = engine.Option

// ErrRuntimeClosed is returned by Runtime methods called after Close.
var ErrRuntimeClosed = engine.ErrClosed

// NewRuntime starts an inference runtime over any Model. Options:
// WithWorkers, WithQueueDepth, WithWarmTables, WithSharedOutputs. Call
// Close to release the pool.
func NewRuntime(m Model, opts ...RuntimeOption) (*Runtime, error) {
	return engine.NewRuntime(m, opts...)
}

// WithWorkers sets the worker-pool size (n <= 0 selects GOMAXPROCS, the
// default).
func WithWorkers(n int) RuntimeOption { return engine.WithWorkers(n) }

// WithQueueDepth sets the job-queue capacity (n <= 0 selects twice the
// worker count, the default).
func WithQueueDepth(n int) RuntimeOption { return engine.WithQueueDepth(n) }

// WithWarmTables eagerly builds the posit fast-path tables for every
// posit layer format before the first inference.
func WithWarmTables() RuntimeOption { return engine.WithWarmTables() }

// WithSharedOutputs makes InferBatch decode logits into a runtime-owned
// buffer reused across calls — allocation-free dataset sweeps; the
// returned slices are valid only until the next InferBatch call.
func WithSharedOutputs() RuntimeOption { return engine.WithSharedOutputs() }

// --- the multi-model serving registry ---

// Registry is the multi-model serving layer: a concurrency-safe table of
// named models, each behind its own Runtime and micro-batcher, with
// reference-counted lifecycle. Load/LoadPath/LoadBytes register models,
// Acquire pins one for the duration of a request, Unload drains and
// closes gracefully. cmd/positrond serves a Registry over HTTP.
type Registry = registry.Registry

// RegistryOption configures a Registry at construction.
type RegistryOption = registry.Option

// ModelHandle pins one registered model (and its Runtime, Batcher and
// Metrics) for the duration of a request; Release when done. Its
// Infer/InferBatch methods are the admission-controlled entry points:
// they claim an in-flight slot (failing fast with ErrModelOverloaded at
// the WithMaxInFlight cap), apply the WithRequestTimeout deadline, and
// ride the micro-batcher.
type ModelHandle = registry.Handle

// Batcher coalesces concurrent single-sample inferences into shared
// runtime batches (dynamic micro-batching): requests arriving within the
// batch window ride one InferBatch call, with per-caller result demux
// and cancellation. Results are bit-identical to unbatched inference.
type Batcher = registry.Batcher

// ModelStat is one registry entry's introspection record (shape,
// arithmetics, batching config, serving metrics).
type ModelStat = registry.ModelStat

// ModelMetrics is one model's serving-metrics snapshot (request count,
// batch-size histogram, p50/p99 latency).
type ModelMetrics = registry.Snapshot

// ErrModelNotFound is returned by Registry lookups for unknown names.
var ErrModelNotFound = registry.ErrNotFound

// ErrModelExists is returned by Registry loads of an already-taken name.
var ErrModelExists = registry.ErrExists

// ErrModelOverloaded is returned by ModelHandle.Infer/InferBatch when
// the model is at its WithMaxInFlight admission cap: the request was
// shed, not queued. positrond maps it to HTTP 429 with Retry-After.
var ErrModelOverloaded = registry.ErrOverloaded

// ErrRequestTimeout is returned when an admitted request exceeds the
// WithRequestTimeout deadline before its inference completes.
var ErrRequestTimeout = registry.ErrRequestTimeout

// NewRegistry returns an empty serving registry. Options configure every
// model loaded afterwards: WithBatchWindow, WithMaxBatch,
// WithRuntimeOptions.
func NewRegistry(opts ...RegistryOption) *Registry { return registry.New(opts...) }

// WithBatchWindow sets the micro-batching coalescing window applied to
// every model in a Registry (d <= 0 disables coalescing).
func WithBatchWindow(d time.Duration) RegistryOption { return registry.WithBatchWindow(d) }

// WithMaxBatch flushes a coalesced batch at size n instead of waiting
// out the window (n <= 1 disables coalescing).
func WithMaxBatch(n int) RegistryOption { return registry.WithMaxBatch(n) }

// WithMaxInFlight caps concurrently admitted inference requests per
// model; a request arriving at the cap fails fast with
// ErrModelOverloaded (HTTP 429 through positrond) instead of queueing
// without bound. n <= 0 leaves admission unlimited (the default).
func WithMaxInFlight(n int) RegistryOption { return registry.WithMaxInFlight(n) }

// WithRequestTimeout bounds one admitted request end to end — batching
// window, runtime queueing and compute; exceeded requests fail with
// ErrRequestTimeout (HTTP 503 through positrond). d <= 0 disables the
// deadline (the default).
func WithRequestTimeout(d time.Duration) RegistryOption { return registry.WithRequestTimeout(d) }

// WithRuntimeOptions sets the Runtime options (WithWorkers,
// WithQueueDepth, WithWarmTables) applied to every per-model runtime a
// Registry builds.
func WithRuntimeOptions(opts ...RuntimeOption) RegistryOption {
	return registry.WithRuntimeOptions(opts...)
}

// WithArtifactStore sets the content-addressed store a Registry lands
// every loaded model's canonical binary artifact in (default: a fresh
// in-memory store). Compose NewUnionStore(NewMemStore(), disk) for a
// durable store with a warm read cache.
func WithArtifactStore(s ArtifactStore) RegistryOption { return registry.WithStore(s) }

// --- binary artifacts and the content-addressed store ---

// ArtifactHash is a model artifact's content address: the SHA-256 of
// its canonical binary encoding. JSON and binary forms of one model
// share one hash; positrond serves it as the /v1/models ETag.
type ArtifactHash = artifact.Hash

// ArtifactStore is the content-addressed blob store interface behind
// the Registry: Put/Get/Has/Delete/List keyed by ArtifactHash, with
// byte verification on every read.
type ArtifactStore = store.Store

// ArtifactStoreStats is one store's occupancy and traffic counters
// (objects, bytes, puts, dedups, gets, hits, corrupt reads).
type ArtifactStoreStats = store.Stats

// EncodeArtifact serialises a Model into the versioned binary artifact
// format — deterministic bytes, several times faster to load than the
// JSON form and a fraction of its size.
func EncodeArtifact(m Model) ([]byte, error) { return artifact.Encode(m) }

// DecodeArtifact parses a binary artifact. Hostile input is rejected
// with an error, never a panic.
func DecodeArtifact(data []byte) (Model, error) { return artifact.Decode(data) }

// ParseArtifact parses a model artifact in either format, sniffing
// binary by its magic and falling back to the JSON codec.
func ParseArtifact(data []byte) (Model, error) { return artifact.Parse(data) }

// LoadArtifact reads a model artifact file in either format.
func LoadArtifact(path string) (Model, error) { return artifact.Load(path) }

// SaveArtifact writes a Model as a binary artifact, atomically (temp
// file + rename; a crash mid-write leaves no torn file).
func SaveArtifact(m Model, path string) error { return artifact.Save(m, path) }

// CanonicalArtifact returns a Model's canonical binary encoding and
// its content hash — the identity dedup, ETags and store keys share.
func CanonicalArtifact(m Model) ([]byte, ArtifactHash, error) { return artifact.Canonical(m) }

// ParseArtifactHash parses the 64-hex-digit string form of a hash.
func ParseArtifactHash(s string) (ArtifactHash, error) { return artifact.ParseHash(s) }

// NewMemStore returns an in-memory artifact store (the Registry
// default).
func NewMemStore() ArtifactStore { return store.NewMem() }

// NewDiskStore opens (creating if needed) a durable artifact store
// rooted at dir: one file per artifact, sharded by hash prefix, atomic
// writes, reads verified against the hash.
func NewDiskStore(dir string) (ArtifactStore, error) { return store.NewDisk(dir) }

// NewUnionStore overlays a fast store (usually NewMemStore) over a
// slow, authoritative one (usually a disk store): reads populate the
// fast layer, writes go through to both.
func NewUnionStore(fast, slow ArtifactStore) ArtifactStore { return store.NewUnion(fast, slow) }

// NewRemoteStore returns a read-only store that fetches artifacts by
// hash from peer positrond replicas (GET /v1/artifacts/{hash}), with
// every fetched blob re-hashed against its address before it is
// returned. Compose it as the slowest tier of a union —
// NewUnionStore(local, NewRemoteStore(peers)) — so local misses pull
// from a peer and persist into the local tiers.
func NewRemoteStore(peers []string) ArtifactStore { return store.NewRemote(peers) }

// InferenceServer is the positrond HTTP handler set over a Registry:
// model load/unload/list, per-model and default-model inference,
// /v1/metrics. Mount it on any http.Server.
type InferenceServer = server.Server

// ServerOption configures an InferenceServer at construction.
type ServerOption = server.Option

// WithModelDir allows POST /v1/models path loads from artifacts under
// dir. Without it, HTTP clients can only upload artifacts inline — a
// path in a load request must not double as a filesystem probe.
func WithModelDir(dir string) ServerOption { return server.WithModelDir(dir) }

// NewServer builds the HTTP inference API over a registry. defaultModel
// names the model behind the single-model /v1/infer and /v1/model
// aliases (empty selects the sole loaded model, when there is exactly
// one).
func NewServer(reg *Registry, defaultModel string, opts ...ServerOption) *InferenceServer {
	return server.New(reg, defaultModel, opts...)
}

// --- resilience: replica routing and fault injection ---

// Router is the resilient replica-routing tier: an HTTP handler that
// fronts N positrond replicas with per-replica circuit breakers, active
// health probing, bounded retries with full-jitter backoff,
// consistent-hash model affinity with least-queue-depth spill, optional
// request hedging, and graceful degradation to a fast 503 with
// Retry-After when no replica is available. cmd/positrond runs one with
// -route.
type Router = router.Router

// RouterOption configures a Router at construction.
type RouterOption = router.Option

// NewRouter builds a routing tier over the replica addresses and starts
// one health-probe goroutine per replica; call Close to release them.
func NewRouter(addrs []string, opts ...RouterOption) (*Router, error) {
	return router.New(addrs, opts...)
}

// WithProbeInterval sets the delay between replica health probes.
func WithProbeInterval(d time.Duration) RouterOption { return router.WithProbeInterval(d) }

// WithProbeTimeout bounds one probe round; a timed-out probe counts as
// a circuit-breaker failure.
func WithProbeTimeout(d time.Duration) RouterOption { return router.WithProbeTimeout(d) }

// WithBreakerThreshold sets how many consecutive failures open a
// replica's circuit breaker.
func WithBreakerThreshold(n int) RouterOption { return router.WithBreakerThreshold(n) }

// WithBreakerCooldown sets how long an open breaker sheds load before
// admitting a half-open trial.
func WithBreakerCooldown(d time.Duration) RouterOption { return router.WithBreakerCooldown(d) }

// WithMaxRetries bounds extra attempts after a retriable failure.
func WithMaxRetries(n int) RouterOption { return router.WithMaxRetries(n) }

// WithRetryBackoff sets the exponential-backoff base and cap for the
// full-jitter retry delay.
func WithRetryBackoff(base, max time.Duration) RouterOption { return router.WithBackoff(base, max) }

// WithHedgeDelay hedges idempotent requests that have not answered
// after d with a second attempt at another replica; the first response
// wins. 0 disables hedging.
func WithHedgeDelay(d time.Duration) RouterOption { return router.WithHedgeDelay(d) }

// RouterMetrics is the router's /v1/metrics body: router-level counters
// plus per-replica breaker and probe state.
type RouterMetrics = router.MetricsSnapshot

// ReplicaStatus is one replica's snapshot in RouterMetrics.
type ReplicaStatus = router.ReplicaStatus

// FaultRule is one deterministic fault-injection rule (see
// ParseFaultRule for the grammar).
type FaultRule = faults.Rule

// FaultInjector injects latency, error and connection-drop faults into
// an HTTP handler on a seeded deterministic schedule — the chaos half
// of the resilience harness (positrond -fault).
type FaultInjector = faults.Injector

// ParseFaultRule parses "latency=50ms@p=0.3", "error=503@p=0.2",
// "drop@p=0.1", optionally scoped as "/v1/infer:error=503@p=0.2".
func ParseFaultRule(s string) (FaultRule, error) { return faults.ParseRule(s) }

// NewFaultInjector builds an injector over the rules; wrap a handler
// with its Wrap method. Identical seeds replay identical schedules.
func NewFaultInjector(seed uint64, rules ...FaultRule) *FaultInjector {
	return faults.New(seed, rules...)
}

// Engine is the original worker-pool batch-inference engine over a
// uniform-precision network.
//
// Deprecated: use Runtime via NewRuntime for direct batch inference, or
// a Registry (NewRegistry) when serving models behind names — both serve
// mixed-precision models, observe context cancellation and return errors
// instead of panicking. Engine remains as a source-compatible shim over
// Runtime.
type Engine = engine.Engine

// EngineResult is one completed streaming inference (ID, logits, class).
type EngineResult = engine.Result

// NewEngine starts an inference engine with the given worker count over
// the network (workers <= 0 selects GOMAXPROCS). Call Close to release
// the pool.
//
// Deprecated: use NewRuntime.
func NewEngine(net *DeepPositron, workers int) *Engine { return engine.New(net, workers) }

// SweepResult is one evaluated low-precision configuration.
type SweepResult = core.Result

// BestConfig evaluates candidate arithmetics and returns the most
// accurate on the dataset.
func BestConfig(net *MLP, test *Dataset, cands []Arithmetic) SweepResult {
	return core.Best(net, test, cands)
}

// Candidates enumerates the paper's configuration grid at bit width n.
func Candidates(n uint) (posits, floats, fixeds []Arithmetic) { return core.Candidates(n) }

// --- datasets ---

// IrisSplit returns the paper's Iris split (100 train / 50 inference).
func IrisSplit(seed uint64) (train, test *Dataset) { return datasets.IrisSplit(seed) }

// BreastCancerSplit returns the WBC split (379 / 190).
func BreastCancerSplit(seed uint64) (train, test *Dataset) {
	return datasets.BreastCancerSplit(seed)
}

// MushroomSplit returns the Mushroom split (5416 / 2708).
func MushroomSplit(seed uint64) (train, test *Dataset) { return datasets.MushroomSplit(seed) }

// Standardize fits per-feature normalisation on train and applies it to
// both splits.
func Standardize(train, test *Dataset) (strain, stest *Dataset) {
	return datasets.Standardize(train, test)
}

// Standardizer is a fitted per-feature affine normalisation; combine with
// MLP.FoldInputAffine to deploy a standardized-trained network on raw
// features.
type Standardizer = datasets.Standardizer

// FitStandardizer estimates per-feature mean/std on a training split.
func FitStandardizer(train *Dataset) *Standardizer { return datasets.FitStandardizer(train) }

// --- hardware model ---

// HWReport is one synthesized EMAC configuration (LUTs, fmax, EDP...).
type HWReport = hw.Report

// Synthesize costs an Arithmetic's EMAC on the Virtex-7 model, sized for
// k-term dot products. The float32 baseline is not a hardware EMAC and
// reports ok == false.
func Synthesize(a Arithmetic, k int) (HWReport, bool) {
	switch arm := a.(type) {
	case emac.PositArith:
		return hw.Virtex7.SynthPosit(arm.F, k), true
	case emac.FloatArith:
		return hw.Virtex7.SynthFloat(arm.F, k), true
	case emac.FixedArith:
		return hw.Virtex7.SynthFixed(arm.F, k), true
	default:
		return HWReport{}, false
	}
}

// NetworkCost extends an EMAC report to a full network: latency, energy
// and EDP per inference.
func NetworkCost(r HWReport, net *DeepPositron) hw.InferenceCost {
	fanins, widths := net.Shape()
	return hw.NetworkCost(r, fanins, widths)
}
