// Command benchsnap runs the arithmetic/inference microbenchmark suite
// in-process (testing.Benchmark) and writes a machine-readable snapshot
// to BENCH_arith.json — the per-PR record of the fast-path performance
// trajectory. Run from the repository root:
//
//	go run ./cmd/benchsnap            # writes ./BENCH_arith.json
//	go run ./cmd/benchsnap -o out.json
//	go run ./cmd/benchsnap -check     # bench-regression smoke (CI): fail
//	                                  # if the fused 256-sample flush is
//	                                  # slower than 256x the per-sample
//	                                  # layer kernel, or the binary
//	                                  # artifact decode is not >=3x faster
//	                                  # than the JSON parse; writes nothing
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/artifact/store"
	"repro/internal/core"
	"repro/internal/emac"
	"repro/internal/engine"
	"repro/internal/nn"
	"repro/internal/posit"
	"repro/internal/registry"
	"repro/internal/rng"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Snapshot is the whole BENCH_arith.json document.
type Snapshot struct {
	GoVersion string   `json:"go_version"`
	GOARCH    string   `json:"goarch"`
	Timestamp string   `json:"timestamp"`
	Results   []Result `json:"results"`
}

func randomPosits(f posit.Format, n int, seed uint64) []posit.Posit {
	r := rng.New(seed)
	out := make([]posit.Posit, n)
	for i := range out {
		for {
			p := f.FromBits(r.Uint64() & f.Mask())
			if !p.IsNaR() {
				out[i] = p
				break
			}
		}
	}
	return out
}

func measure(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

func main() {
	out := flag.String("o", "BENCH_arith.json", "output path")
	check := flag.Bool("check", false,
		"regression smoke: only compare ForwardBatch256 against 256x the per-sample layer kernel per arm, exit 1 on regression, write nothing")
	flag.Parse()

	f80 := posit.MustFormat(8, 0)
	posit.WarmTables(f80)
	mulXs := randomPosits(f80, 1024, 21)
	addXs := randomPosits(f80, 1024, 22)
	dotW := randomPosits(f80, 256, 23)
	dotX := randomPosits(f80, 256, 24)

	net := nn.NewMLP([]int{30, 16, 8, 2}, rng.New(42))
	dp := core.Quantize(net, emac.NewPosit(8, 0))
	dpFloat := core.Quantize(net, emac.NewFloatN(8, 4))
	dpFixed := core.Quantize(net, emac.NewFixed(8, 4))
	inX := make([]float64, 30)
	r := rng.New(25)
	for i := range inX {
		inX[i] = r.NormMS(0, 1)
	}
	batch := make([][]float64, 256)
	for s := range batch {
		x := make([]float64, 30)
		for i := range x {
			x[i] = r.NormMS(0, 1)
		}
		batch[s] = x
	}

	snap := Snapshot{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	if !*check {
		// Forward30-16-8-2 measures steady-state serving inference: one
		// warm session per arm through InferInto with a reused logits
		// buffer, so the row proves the single-sample path is
		// allocation-free end to end.
		sess := dp.NewSession()
		sessFloat := dpFloat.NewSession()
		sessFixed := dpFixed.NewSession()
		logits := make([]float64, 2)
		sess.InferInto(logits, inX)
		sessFloat.InferInto(logits, inX)
		sessFixed.InferInto(logits, inX)
		snap.Results = append(snap.Results,
			measure("PositMul/posit(8,0)", func(b *testing.B) {
				b.ReportAllocs()
				var sink posit.Posit
				for i := 0; i < b.N; i++ {
					sink = mulXs[i%1024].Mul(mulXs[(i+7)%1024])
				}
				_ = sink
			}),
			measure("PositAdd/posit(8,0)", func(b *testing.B) {
				b.ReportAllocs()
				var sink posit.Posit
				for i := 0; i < b.N; i++ {
					sink = addXs[i%1024].Add(addXs[(i+7)%1024])
				}
				_ = sink
			}),
			measure("DotProduct256/posit(8,0)", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					posit.DotProduct(dotW, dotX)
				}
			}),
			measure("Forward30-16-8-2/posit(8,0)", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sess.InferInto(logits, inX)
				}
			}),
			measure("Forward30-16-8-2/float(8,4)", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sessFloat.InferInto(logits, inX)
				}
			}),
			measure("Forward30-16-8-2/fixed(8,4)", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sessFixed.InferInto(logits, inX)
				}
			}),
		)
	}
	// Layer-kernel and fused-batch benches: one pre-decoded 16×30 layer
	// per arm, measuring the per-sample Forward against the whole-flush
	// ForwardBatch at B ∈ {8, 32, 256} (the Table II cross-arm datapath
	// at layer and flush granularity). In -check mode only the 256-flush
	// runs and is held to 256× the per-sample kernel.
	type layerCheck struct {
		arm      string
		perOp    float64
		batch256 float64
	}
	var checks []layerCheck
	for _, arm := range []struct {
		name string
		a    emac.Arithmetic
	}{
		{"posit(8,0)", emac.NewPosit(8, 0)},
		{"float(8,4)", emac.NewFloatN(8, 4)},
		{"fixed(8,4)", emac.NewFixed(8, 4)},
	} {
		const in, out = 30, 16
		lr := rng.New(31)
		w := make([][]emac.Code, out)
		bias := make([]emac.Code, out)
		for j := range w {
			row := make([]emac.Code, in)
			for i := range row {
				row[i] = arm.a.Quantize(lr.NormMS(0, 1))
			}
			w[j] = row
			bias[j] = arm.a.Quantize(lr.NormMS(0, 0.5))
		}
		k, ok := arm.a.(emac.KernelBuilder).NewLayerKernel(w, bias)
		if !ok {
			fmt.Fprintln(os.Stderr, "benchsnap: no layer kernel for", arm.a.Name())
			os.Exit(1)
		}
		act := make([]emac.Code, in)
		for i := range act {
			act[i] = arm.a.Quantize(lr.NormMS(0, 1))
		}
		dst := make([]emac.Code, out)
		kres := measure("LayerKernel16x30/"+arm.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				k.Forward(act, dst)
			}
		})
		snap.Results = append(snap.Results, kres)
		bk, ok := arm.a.(emac.BatchKernelBuilder).NewBatchLayerKernel(w, bias)
		if !ok {
			fmt.Fprintln(os.Stderr, "benchsnap: no batch layer kernel for", arm.a.Name())
			os.Exit(1)
		}
		lc := layerCheck{arm: arm.name, perOp: kres.NsPerOp}
		for _, bsz := range []int{8, 32, 256} {
			if *check && bsz != 256 {
				continue
			}
			actP := make([]emac.Code, bsz*in)
			for i := range actP {
				actP[i] = arm.a.Quantize(lr.NormMS(0, 1))
			}
			outP := make([]emac.Code, bsz*out)
			bres := measure(fmt.Sprintf("ForwardBatch%d/%s", bsz, arm.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					bk.ForwardBatchStrided(actP, outP, bsz)
				}
			})
			snap.Results = append(snap.Results, bres)
			if bsz == 256 {
				lc.batch256 = bres.NsPerOp
			}
		}
		checks = append(checks, lc)
	}
	// ArtifactLoad: warm model load from bytes, JSON parse vs binary
	// decode on the 30-16-8-2 posit(8,0) net. The binary path is the one
	// positrond restarts and registry warm loads ride on; -check holds it
	// to >=3x the JSON parser's throughput.
	jsonBytes, err := json.Marshal(dp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	binBytes, err := artifact.Encode(dp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	loadJSON := measure("ArtifactLoad/json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.ParseModel(jsonBytes); err != nil {
				b.Fatal(err)
			}
		}
	})
	loadBin := measure("ArtifactLoad/bin", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := artifact.Decode(binBytes); err != nil {
				b.Fatal(err)
			}
		}
	})
	snap.Results = append(snap.Results, loadJSON, loadBin)
	if !*check {
		// ArtifactFetch: the two ends of the store read path a replica
		// sees — a local in-memory tier hit vs a cold peer fetch over
		// loopback HTTP (GET /v1/artifacts/{hash} + re-hash verification).
		// The spread is what the union's pull-through cache bridges: only
		// the first fetch of a hash pays the peer row.
		localStore := store.NewMem()
		hash, err := localStore.Put(binBytes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(binBytes)
		}))
		remote := store.NewRemote([]string{peer.URL})
		snap.Results = append(snap.Results,
			measure("ArtifactFetch/local", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := localStore.Get(hash); err != nil {
						b.Fatal(err)
					}
				}
			}),
			measure("ArtifactFetch/peer", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := remote.Get(hash); err != nil {
						b.Fatal(err)
					}
				}
			}),
		)
		peer.Close()
	}
	// FlushPipeline: sustained-load serving throughput through the
	// micro-batcher over a shared-output runtime — 16 client goroutines
	// streaming single-sample inferences into a 200µs window (max batch
	// 8), serialised flushes (depth 1, the pre-pipeline behaviour) vs the
	// two-plane pipeline (depth 2: flush N computes while flush N−1's
	// readers drain and N+1 accumulates). ns/op is per sample. In -check
	// mode each arm takes the best of 3 runs and pipelined must be at
	// least as fast as serialised; on a single-CPU host pipelining is
	// work-conserving (the ratio's ideal is 1.0), so a small
	// scheduler-noise allowance applies there while multicore hosts —
	// where the overlap is real — are held to the strict >=1x.
	flushBench := func(name string, depth int) Result {
		rt, err := engine.NewRuntime(dp,
			engine.WithSharedOutputs(), engine.WithFlushPipeline(depth))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		bt := registry.NewBatcher(rt, 200*time.Microsecond, 8, nil)
		ctx := context.Background()
		res := measure(name, func(b *testing.B) {
			var (
				next     atomic.Int64
				wg       sync.WaitGroup
				errOnce  sync.Once
				firstErr error
			)
			for g := 0; g < 16; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						if _, err := bt.Infer(ctx, batch[i%int64(len(batch))]); err != nil {
							errOnce.Do(func() { firstErr = err })
							return
						}
					}
				}()
			}
			wg.Wait()
			if firstErr != nil {
				b.Fatal(firstErr)
			}
		})
		bt.Close()
		_ = rt.Close()
		return res
	}
	bestOf := func(name string, depth, runs int) Result {
		best := flushBench(name, depth)
		for i := 1; i < runs; i++ {
			if r := flushBench(name, depth); r.NsPerOp < best.NsPerOp {
				best = r
			}
		}
		return best
	}
	flushRuns := 1
	if *check {
		flushRuns = 3
	}
	flushSerial := bestOf("FlushPipeline/serialised", 1, flushRuns)
	flushPiped := bestOf("FlushPipeline/pipelined2", 2, flushRuns)
	snap.Results = append(snap.Results, flushSerial, flushPiped)
	if *check {
		pass := true
		speedup := loadJSON.NsPerOp / loadBin.NsPerOp
		fmt.Printf("benchsnap check: ArtifactLoad json %.1f ns, bin %.1f ns (%.2fx)\n",
			loadJSON.NsPerOp, loadBin.NsPerOp, speedup)
		if speedup < 3 {
			fmt.Fprintf(os.Stderr,
				"benchsnap check: REGRESSION: binary artifact decode only %.2fx the JSON parse (want >= 3x)\n", speedup)
			pass = false
		}
		for _, c := range checks {
			limit := c.perOp * 256
			fmt.Printf("benchsnap check: %-12s fused 256-flush %12.1f ns, 256x per-sample %12.1f ns (%.2fx per-sample throughput)\n",
				c.arm, c.batch256, limit, limit/c.batch256)
			if c.batch256 > limit {
				fmt.Fprintf(os.Stderr,
					"benchsnap check: REGRESSION: %s ForwardBatch256 is slower than 256x the per-sample kernel\n", c.arm)
				pass = false
			}
		}
		ratio := flushSerial.NsPerOp / flushPiped.NsPerOp
		floor := 1.0
		note := ""
		if runtime.GOMAXPROCS(0) == 1 {
			// Single CPU: pipelining is work-conserving (ideal ratio 1.0);
			// hold to parity within scheduler noise rather than failing on
			// jitter that no code change caused.
			floor = 0.95
			note = " [1-CPU host: parity within noise is the two-plane ideal]"
		}
		fmt.Printf("benchsnap check: FlushPipeline serialised %.1f ns/sample, pipelined2 %.1f ns/sample (%.2fx)%s\n",
			flushSerial.NsPerOp, flushPiped.NsPerOp, ratio, note)
		if ratio < floor {
			fmt.Fprintf(os.Stderr,
				"benchsnap check: REGRESSION: pipelined flush path is %.2fx the serialised path (want >= %.2fx)\n", ratio, floor)
			pass = false
		}
		if !pass {
			os.Exit(1)
		}
		fmt.Println("benchsnap check: fused batch kernels, artifact load, and flush pipeline OK")
		return
	}
	// Batch-engine bench: 256 inferences per op through the worker pool.
	for _, workers := range []int{1, 4} {
		e := engine.New(dp, workers)
		snap.Results = append(snap.Results, measure(
			fmt.Sprintf("EngineBatch256/posit(8,0)/workers%d", workers),
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					e.InferBatch(batch)
				}
			}))
		e.Close()
	}
	// Runtime worker-scaling bench, gated on a multicore host: the 1-CPU
	// dev container measures ≈1.0× for any pool size, so emitting rows
	// there would only record noise. On a host with GOMAXPROCS > 1 this
	// produces the ROADMAP scaling record: shared-output batches (the 0
	// allocs/op serving path) at 1, 2, 4, ... workers up to the CPU count.
	if procs := runtime.GOMAXPROCS(0); procs > 1 {
		for workers := 1; workers <= procs; workers *= 2 {
			rt, err := engine.NewRuntime(dp,
				engine.WithWorkers(workers), engine.WithSharedOutputs())
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsnap:", err)
				os.Exit(1)
			}
			ctx := context.Background()
			snap.Results = append(snap.Results, measure(
				fmt.Sprintf("RuntimeBatch256/posit(8,0)/workers%d", workers),
				func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := rt.InferBatch(ctx, batch); err != nil {
							b.Fatal(err)
						}
					}
				}))
			_ = rt.Close()
		}
	} else {
		fmt.Fprintln(os.Stderr, "benchsnap: single-CPU host; skipping RuntimeBatch256 worker-scaling rows")
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	for _, res := range snap.Results {
		fmt.Printf("%-30s %10.1f ns/op %6d B/op %4d allocs/op\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	fmt.Println("wrote", *out)
}
