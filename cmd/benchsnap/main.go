// Command benchsnap runs the arithmetic/inference microbenchmark suite
// in-process (testing.Benchmark) and writes a machine-readable snapshot
// to BENCH_arith.json — the per-PR record of the fast-path performance
// trajectory. Run from the repository root:
//
//	go run ./cmd/benchsnap            # writes ./BENCH_arith.json
//	go run ./cmd/benchsnap -o out.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/emac"
	"repro/internal/engine"
	"repro/internal/nn"
	"repro/internal/posit"
	"repro/internal/rng"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Snapshot is the whole BENCH_arith.json document.
type Snapshot struct {
	GoVersion string   `json:"go_version"`
	GOARCH    string   `json:"goarch"`
	Timestamp string   `json:"timestamp"`
	Results   []Result `json:"results"`
}

func randomPosits(f posit.Format, n int, seed uint64) []posit.Posit {
	r := rng.New(seed)
	out := make([]posit.Posit, n)
	for i := range out {
		for {
			p := f.FromBits(r.Uint64() & f.Mask())
			if !p.IsNaR() {
				out[i] = p
				break
			}
		}
	}
	return out
}

func measure(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

func main() {
	out := flag.String("o", "BENCH_arith.json", "output path")
	flag.Parse()

	f80 := posit.MustFormat(8, 0)
	posit.WarmTables(f80)
	mulXs := randomPosits(f80, 1024, 21)
	addXs := randomPosits(f80, 1024, 22)
	dotW := randomPosits(f80, 256, 23)
	dotX := randomPosits(f80, 256, 24)

	net := nn.NewMLP([]int{30, 16, 8, 2}, rng.New(42))
	dp := core.Quantize(net, emac.NewPosit(8, 0))
	dpFloat := core.Quantize(net, emac.NewFloatN(8, 4))
	dpFixed := core.Quantize(net, emac.NewFixed(8, 4))
	inX := make([]float64, 30)
	r := rng.New(25)
	for i := range inX {
		inX[i] = r.NormMS(0, 1)
	}
	batch := make([][]float64, 256)
	for s := range batch {
		x := make([]float64, 30)
		for i := range x {
			x[i] = r.NormMS(0, 1)
		}
		batch[s] = x
	}

	snap := Snapshot{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	snap.Results = append(snap.Results,
		measure("PositMul/posit(8,0)", func(b *testing.B) {
			b.ReportAllocs()
			var sink posit.Posit
			for i := 0; i < b.N; i++ {
				sink = mulXs[i%1024].Mul(mulXs[(i+7)%1024])
			}
			_ = sink
		}),
		measure("PositAdd/posit(8,0)", func(b *testing.B) {
			b.ReportAllocs()
			var sink posit.Posit
			for i := 0; i < b.N; i++ {
				sink = addXs[i%1024].Add(addXs[(i+7)%1024])
			}
			_ = sink
		}),
		measure("DotProduct256/posit(8,0)", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				posit.DotProduct(dotW, dotX)
			}
		}),
		measure("Forward30-16-8-2/posit(8,0)", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dp.Infer(inX)
			}
		}),
		measure("Forward30-16-8-2/float(8,4)", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dpFloat.Infer(inX)
			}
		}),
		measure("Forward30-16-8-2/fixed(8,4)", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dpFixed.Infer(inX)
			}
		}),
	)
	// Layer-kernel benches: one pre-decoded 16×30 layer forward per arm
	// (the Table II cross-arm datapath at layer granularity).
	for _, arm := range []struct {
		name string
		a    emac.Arithmetic
	}{
		{"LayerKernel16x30/posit(8,0)", emac.NewPosit(8, 0)},
		{"LayerKernel16x30/float(8,4)", emac.NewFloatN(8, 4)},
		{"LayerKernel16x30/fixed(8,4)", emac.NewFixed(8, 4)},
	} {
		const in, out = 30, 16
		w := make([][]emac.Code, out)
		bias := make([]emac.Code, out)
		for j := range w {
			row := make([]emac.Code, in)
			for i := range row {
				row[i] = arm.a.Quantize(r.NormMS(0, 1))
			}
			w[j] = row
			bias[j] = arm.a.Quantize(r.NormMS(0, 0.5))
		}
		k, ok := arm.a.(emac.KernelBuilder).NewLayerKernel(w, bias)
		if !ok {
			fmt.Fprintln(os.Stderr, "benchsnap: no layer kernel for", arm.a.Name())
			os.Exit(1)
		}
		act := make([]emac.Code, in)
		for i := range act {
			act[i] = arm.a.Quantize(r.NormMS(0, 1))
		}
		dst := make([]emac.Code, out)
		snap.Results = append(snap.Results, measure(arm.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				k.Forward(act, dst)
			}
		}))
	}
	// Batch-engine bench: 256 inferences per op through the worker pool.
	for _, workers := range []int{1, 4} {
		e := engine.New(dp, workers)
		snap.Results = append(snap.Results, measure(
			fmt.Sprintf("EngineBatch256/posit(8,0)/workers%d", workers),
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					e.InferBatch(batch)
				}
			}))
		e.Close()
	}
	// Runtime worker-scaling bench, gated on a multicore host: the 1-CPU
	// dev container measures ≈1.0× for any pool size, so emitting rows
	// there would only record noise. On a host with GOMAXPROCS > 1 this
	// produces the ROADMAP scaling record: shared-output batches (the 0
	// allocs/op serving path) at 1, 2, 4, ... workers up to the CPU count.
	if procs := runtime.GOMAXPROCS(0); procs > 1 {
		for workers := 1; workers <= procs; workers *= 2 {
			rt, err := engine.NewRuntime(dp,
				engine.WithWorkers(workers), engine.WithSharedOutputs())
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsnap:", err)
				os.Exit(1)
			}
			ctx := context.Background()
			snap.Results = append(snap.Results, measure(
				fmt.Sprintf("RuntimeBatch256/posit(8,0)/workers%d", workers),
				func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := rt.InferBatch(ctx, batch); err != nil {
							b.Fatal(err)
						}
					}
				}))
			_ = rt.Close()
		}
	} else {
		fmt.Fprintln(os.Stderr, "benchsnap: single-CPU host; skipping RuntimeBatch256 worker-scaling rows")
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	for _, res := range snap.Results {
		fmt.Printf("%-30s %10.1f ns/op %6d B/op %4d allocs/op\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	fmt.Println("wrote", *out)
}
