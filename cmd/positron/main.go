// Command positron regenerates the paper's tables and figures.
//
// Usage:
//
//	positron [flags] <experiment>...
//
// Experiments: table1, fig2, fig6, fig7, fig8, table2, sweep, fig9, all.
//
// Flags:
//
//	-limit N   truncate each inference set to N samples (0 = full, the
//	           paper's sizes: 190 / 50 / 2708). Full runs take a few
//	           minutes because every configuration of every format is
//	           evaluated bit-exactly.
//	-k N       dot-product length used to size the EMAC accumulators in
//	           the hardware model (default 32).
//	-workers N worker count for the parallel inference engine
//	           (0 = GOMAXPROCS).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	limit := flag.Int("limit", 0, "max inference samples per dataset (0 = full)")
	k := flag.Int("k", 32, "accumulator dot-product capacity for the hardware model")
	workers := flag.Int("workers", 0, "worker count for the parallel inference engine (0 = GOMAXPROCS)")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	for _, name := range args {
		if name == "all" {
			runAll(*limit, *k, *workers)
			continue
		}
		if !run(name, *limit, *k, *workers) {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			usage()
			os.Exit(2)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `positron — regenerate the Deep Positron paper's tables and figures

usage: positron [-limit N] [-k N] [-workers N] <experiment>...

experiments:
  table1   regime interpretation (Table I)
  fig2     posit(7,0) value distribution vs trained DNN weights (Fig. 2)
  fig6     dynamic range vs max operating frequency (Fig. 6)
  fig7     n vs energy-delay-product (Fig. 7)
  fig8     n vs LUT utilisation (Fig. 8)
  table2   8-bit accuracy on WBC / Iris / Mushroom (Table II)
  sweep    best accuracy for every (format, n) pair, n in [5,8] (§IV-B)
  fig9     avg accuracy degradation vs EDP (Fig. 9)
  decimals decimal-accuracy profile of the 8-bit formats (extension)
  hw       full-accelerator estimates per dataset topology (extension)
  memonly  weight-storage-only quantisation, float32 compute (extension)
  qat      quantisation-aware fine-tuning vs post-training (extension)
  quire    truncated-quire accuracy ablation (extension)
  wide16   16-bit formats: posit16 vs binary16 vs bfloat16 (extension)
  scaling  EMAC hardware scaling to n in {8..32} (extension)
  robust   re-run Table II under alternative master seeds (extension)
  engine   parallel dataset evaluation: serial session vs worker-pool
           batch engine, all 8-bit arms (extension)
  verify   re-check every headline paper claim; exit 1 on violation
  all      everything above
`)
}

func runAll(limit, k, workers int) {
	for _, name := range []string{"table1", "fig2", "fig6", "fig7", "fig8", "table2", "sweep", "fig9", "decimals", "hw", "memonly", "qat", "quire", "engine"} {
		run(name, limit, k, workers)
	}
}

func run(name string, limit, k, workers int) bool {
	switch name {
	case "table1":
		_, tab := experiments.Table1()
		fmt.Println(tab)
	case "fig2":
		res, tab := experiments.Fig2()
		fmt.Println(tab)
		fmt.Printf("posit(7,0) fraction of values in [-1,1]: %.1f%%\n", 100*res.PositInUnit)
		fmt.Printf("trained WBC weights in [-1,1]: %.1f%% (of %d; min %.3g max %.3g)\n\n",
			100*res.WeightStats.FracInUnit, res.WeightStats.Count,
			res.WeightStats.Min, res.WeightStats.Max)
	case "fig6":
		reports, fig := experiments.Fig6(k)
		fmt.Println(fig)
		for _, r := range reports {
			fmt.Println(" ", r)
		}
		fmt.Println()
	case "fig7":
		_, fig := experiments.Fig7(k)
		fmt.Println(fig)
	case "fig8":
		_, fig := experiments.Fig8(k)
		fmt.Println(fig)
	case "table2":
		_, tab := experiments.Table2(limit)
		fmt.Println(tab)
	case "sweep":
		_, tab := experiments.Sweep(limit)
		fmt.Println(tab)
	case "fig9":
		pts, fig := experiments.Fig9(limit)
		fmt.Println(fig)
		for _, p := range pts {
			fmt.Printf("  %-6s n=%d  degradation=%6.2f%%  EDP=%.3g\n",
				p.Family, p.N, p.AvgDegradation, p.EDP)
		}
		fmt.Println()
	case "decimals":
		_, tab := experiments.DecimalAccuracy(0)
		fmt.Println(tab)
	case "hw":
		_, tab := experiments.NetworkReports()
		fmt.Println(tab)
	case "memonly":
		_, tab := experiments.MemoryOnly(limit)
		fmt.Println(tab)
	case "qat":
		_, tab := experiments.QuantizationAwareTraining(limit)
		fmt.Println(tab)
	case "quire":
		_, tab := experiments.QuireAblation(limit)
		fmt.Println(tab)
	case "wide16":
		_, tab := experiments.Wide16(limit)
		fmt.Println(tab)
	case "scaling":
		_, tab := experiments.Scaling(k)
		fmt.Println(tab)
	case "engine":
		_, tab := experiments.EngineSweep(limit, workers)
		fmt.Println(tab)
	case "robust":
		_, tab := experiments.RobustnessCheck(
			[]uint64{21, 1234, 0xBEEF},
			[]string{"WisconsinBreastCancer", "Iris", "Mushroom"}, limit)
		fmt.Println(tab)
	case "verify":
		checks, tab := experiments.Verify(limit)
		fmt.Println(tab)
		for _, c := range checks {
			if !c.Pass {
				fmt.Fprintf(os.Stderr, "verification failed: %s (%s)\n", c.ID, c.Claim)
				os.Exit(1)
			}
		}
		fmt.Println("all paper claims verified.")
	default:
		return false
	}
	return true
}
