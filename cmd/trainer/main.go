// Command trainer trains the paper's three networks in float64, reports
// the 32-bit baselines, and optionally saves the models as JSON for
// later quantised evaluation.
//
// Usage:
//
//	trainer [-out DIR] [-verbose]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/nn"
)

func main() {
	out := flag.String("out", "", "directory to save trained models (JSON); empty = don't save")
	flag.Parse()

	fmt.Println("training the Deep Positron evaluation networks (float64, SGD+momentum)...")
	for _, tr := range experiments.Datasets() {
		fmt.Printf("%-24s %s  train=%d test=%d\n", tr.Name, tr.Net, tr.Train.Len(), tr.Test.Len())
		fmt.Printf("  float64 accuracy: %6.2f%%\n", 100*tr.Acc64)
		fmt.Printf("  float32 accuracy: %6.2f%%  (paper Table II baseline column)\n", 100*tr.Acc32)
		st := tr.Net.Stats()
		fmt.Printf("  weights: %d params, %.1f%% in [-1,1], range [%.3g, %.3g]\n",
			st.Count, 100*st.FracInUnit, st.Min, st.Max)
		cm := nn.Confusion(tr.Net.Predict, tr.Test)
		for _, line := range strings.Split(cm.String(), "\n") {
			fmt.Printf("  %s\n", line)
		}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*out, tr.Name+".json")
			if err := tr.Net.Save(path); err != nil {
				fatal(err)
			}
			fmt.Printf("  saved to %s\n", path)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trainer:", err)
	os.Exit(1)
}
