// Command trainer trains the paper's three networks in float64, reports
// the 32-bit baselines, and optionally saves the models as JSON: the
// float64 weights for later quantised evaluation, and — with -quant —
// ready-to-serve quantised deployment artifacts (with the dataset's
// input standardizer folded in) that cmd/positrond loads directly.
//
// Usage:
//
//	trainer [-out DIR] [-quant SPEC] [-format json|bin]
//
// SPEC is an arithmetic such as posit(8,0), float(8,4), fixed(8,4) or
// float32. -format selects the quantised artifact encoding: json (the
// default, human-readable) or bin (the compact binary format positrond
// loads several times faster and hashes for content addressing).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/emac"
	"repro/internal/experiments"
	"repro/internal/nn"
)

func main() {
	out := flag.String("out", "", "directory to save trained models (JSON); empty = don't save")
	quant := flag.String("quant", "", "also save a quantised serving artifact per dataset in this arithmetic (e.g. posit(8,0))")
	format := flag.String("format", "json", "quantised artifact format: json or bin")
	flag.Parse()

	if *quant != "" && *out == "" {
		fmt.Fprintln(os.Stderr, "trainer: -quant requires -out")
		os.Exit(2)
	}
	if *format != "json" && *format != "bin" {
		fmt.Fprintf(os.Stderr, "trainer: -format must be json or bin, got %q\n", *format)
		os.Exit(2)
	}
	var arith emac.Arithmetic
	if *quant != "" {
		var err error
		if arith, err = core.ParseArith(*quant); err != nil {
			fatal(err)
		}
	}

	fmt.Println("training the Deep Positron evaluation networks (float64, SGD+momentum)...")
	for _, tr := range experiments.Datasets() {
		fmt.Printf("%-24s %s  train=%d test=%d\n", tr.Name, tr.Net, tr.Train.Len(), tr.Test.Len())
		fmt.Printf("  float64 accuracy: %6.2f%%\n", 100*tr.Acc64)
		fmt.Printf("  float32 accuracy: %6.2f%%  (paper Table II baseline column)\n", 100*tr.Acc32)
		st := tr.Net.Stats()
		fmt.Printf("  weights: %d params, %.1f%% in [-1,1], range [%.3g, %.3g]\n",
			st.Count, 100*st.FracInUnit, st.Min, st.Max)
		cm := nn.Confusion(tr.Net.Predict, tr.Test)
		for _, line := range strings.Split(cm.String(), "\n") {
			fmt.Printf("  %s\n", line)
		}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*out, tr.Name+".json")
			if err := tr.Net.Save(path); err != nil {
				fatal(err)
			}
			fmt.Printf("  saved to %s\n", path)
			if arith != nil {
				// The serving artifact: quantised codes plus the input
				// standardizer, so positrond consumes raw features.
				// Evaluate before attaching the standardizer —
				// Trained.Test already holds the features the network
				// expects (standardized for Iris), so attaching first
				// would standardize twice.
				q := core.Quantize(tr.Net, arith)
				acc := q.Accuracy(tr.Test)
				q.Stand = tr.Std
				qpath := filepath.Join(*out, tr.Name+".quant."+*format)
				if err := artifactSave(q, qpath, *format); err != nil {
					fatal(err)
				}
				_, hash, err := artifact.Canonical(q)
				if err != nil {
					fatal(err)
				}
				fmt.Printf("  quantised (%s) accuracy: %6.2f%%  saved to %s (sha256:%s)\n",
					arith.Name(), 100*acc, qpath, hash)
			}
		}
	}
}

// artifactSave writes the quantised serving artifact in the selected
// encoding; both forms carry identical semantics and hash identically.
func artifactSave(m core.Model, path, format string) error {
	if format == "bin" {
		return artifact.Save(m, path)
	}
	return m.Save(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trainer:", err)
	os.Exit(1)
}
