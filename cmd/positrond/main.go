// Command positrond serves quantised Deep Positron artifacts over HTTP:
// load one or more versioned model files (uniform or mixed precision)
// into the serving registry, start a worker-pool inference runtime and a
// dynamic micro-batcher per model, and expose the JSON API.
//
// Usage:
//
//	positrond -model iris.json                         # one model
//	positrond -model iris=iris.json -model wbc=wbc.json \
//	          -default iris -batch-window 2ms -max-batch 64 \
//	          -flush-pipeline 2 -max-inflight 256 -cost-aware \
//	          -request-timeout 2s
//
// -flush-pipeline sets the per-model flush-pipeline depth: that many
// result planes per shared-output runtime, so the fused batch kernels
// compute flush N while flush N−1's results demux and flush N+1
// accumulates (1 serialises flushes end to end). -cost-aware makes the
// -max-inflight admission gate count samples instead of requests: an
// explicit batch of n inputs claims n units, so mixed single/batch
// traffic sheds in proportion to the compute it asks for.
//
// Each -model flag is either name=path or a bare path (the name is then
// derived from the file name: models/Iris.quant.json -> "Iris"). Both
// JSON and binary (.bin, trainer -format bin) artifacts load
// transparently — the format is sniffed from the bytes. The first
// -model is the default served by the /v1/infer and /v1/model aliases
// unless -default names another.
//
// Every loaded model is fingerprinted (SHA-256 of its canonical binary
// encoding) into a content-addressed artifact store — the source of
// truth for model bytes: /v1/models serves the hash as an ETag
// (If-None-Match polls answer 304), same-hash loads under different
// names share one stored blob and one runtime, and -store-dir makes the
// store durable on disk (warm restarts, byte-verified reads):
//
//	positrond -model iris.quant.bin -store-dir /var/lib/positron/artifacts
//
// -peers composes a read-only peer-fetch tier under the local store:
// a model loaded by hash (POST /v1/models {"name":..., "hash":...})
// whose bytes are missing locally is pulled from a peer's
// GET /v1/artifacts/{hash}, re-hash verified, persisted into the local
// tiers, and served — so a replica may boot with no -model flags at all
// and an empty -store-dir, then be populated over HTTP:
//
//	positrond -addr :8081 -store-dir /var/lib/positron/artifacts \
//	          -peers 127.0.0.1:8080,127.0.0.1:8082
//
// -store-gc runs a reference-aware sweep on that interval (also
// available on demand via POST /v1/store/gc): blobs no loaded model or
// in-flight load references are removed, which is how bytes stranded by
// DELETE /v1/models/{name} get reclaimed.
//
// Router mode fronts a set of replicas instead of serving models
// itself: health-probed, circuit-broken, retrying proxy with
// least-queue-depth placement and consistent-hash model affinity:
//
//	positrond -route 127.0.0.1:8081,127.0.0.1:8082 -addr :8080 \
//	          -retries 2 -breaker-threshold 3 -breaker-cooldown 2s \
//	          -probe-interval 1s -hedge 20ms
//
// Deterministic fault injection (for chaos drills; see internal/faults
// for the rule grammar) wraps whichever plane is serving:
//
//	positrond -model iris.json -fault 'error=503@p=0.2' \
//	          -fault '/v1/models/iris/infer:latency=50ms@p=0.3' -fault-seed 42
//
// Opt-in profiling serves the net/http/pprof endpoints on a separate
// listener (off by default; keep it firewalled):
//
//	positrond -model iris.json -pprof 127.0.0.1:6060
//
// Endpoints:
//
//	GET    /healthz                  liveness probe (503 once draining)
//	GET    /readyz                   readiness probe
//	GET    /v1/models                list loaded models
//	POST   /v1/models                load {"name":..., "path":...},
//	                                 {"name":..., "artifact":{...}} or
//	                                 {"name":..., "hash":"<sha256>"}
//	GET    /v1/models/{name}         model metadata and stats
//	DELETE /v1/models/{name}         graceful unload
//	GET    /v1/artifacts/{hash}      raw canonical artifact bytes (ETag = hash)
//	POST   /v1/store/gc              sweep unreferenced artifact blobs
//	POST   /v1/models/{name}/infer   {"input": [...]} or {"inputs": [[...], ...]}
//	GET    /v1/metrics               per-model batching and latency metrics
//	                                 (per-replica breaker state in router mode)
//	GET    /v1/model, POST /v1/infer default-model aliases
//
// SIGINT/SIGTERM shut the daemon down gracefully: /healthz flips to 503
// first (so routers and load balancers drain away), the listener stops
// accepting, in-flight requests finish, then every model's worker pool
// drains.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/artifact/store"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/registry"
	"repro/internal/router"
	"repro/internal/server"
)

// modelFlag is one -model value: an optional name and an artifact path.
type modelFlag struct {
	name, path string
}

// modelFlags collects repeated -model values.
type modelFlags []modelFlag

func (m *modelFlags) String() string {
	parts := make([]string, len(*m))
	for i, f := range *m {
		parts[i] = f.name + "=" + f.path
	}
	return strings.Join(parts, ",")
}

func (m *modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		path = v
		name = deriveName(v)
	}
	if name == "" || path == "" {
		return fmt.Errorf("want name=path or path, got %q", v)
	}
	*m = append(*m, modelFlag{name: name, path: path})
	return nil
}

// stringFlags collects a repeatable string flag (-fault).
type stringFlags []string

func (s *stringFlags) String() string { return strings.Join(*s, ",") }
func (s *stringFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// deriveName turns an artifact path into a model name:
// models/Iris.quant.json -> "Iris".
func deriveName(path string) string {
	name := filepath.Base(path)
	name = strings.TrimSuffix(name, filepath.Ext(name))
	name = strings.TrimSuffix(name, ".quant")
	return name
}

func main() {
	var models modelFlags
	var faultSpecs stringFlags
	flag.Var(&models, "model", "name=path (or path) of a saved model artifact; repeatable (required unless -route)")
	defaultModel := flag.String("default", "", "model served by the /v1/infer and /v1/model aliases (default: the first -model)")
	modelDir := flag.String("model-dir", "",
		"directory POST /v1/models path loads may read artifacts from (default: the first -model's directory; uploads are always allowed)")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "per-model inference worker count (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "per-model job queue depth (0 = 2x workers)")
	batchWindow := flag.Duration("batch-window", registry.DefaultBatchWindow,
		"micro-batching window: concurrent single inferences arriving within it share one batch (0 disables)")
	maxBatch := flag.Int("max-batch", registry.DefaultMaxBatch,
		"flush a coalesced batch at this size instead of waiting out the window")
	flushPipeline := flag.Int("flush-pipeline", registry.DefaultFlushPipeline,
		"flush-pipeline depth: result planes per model, so flush N computes while flush N-1 demuxes and N+1 accumulates (1 serialises flushes)")
	maxInFlight := flag.Int("max-inflight", 0,
		"per-model cap on concurrently admitted inference requests; beyond it requests are shed with HTTP 429 (0 = unlimited)")
	costAware := flag.Bool("cost-aware", false,
		"weigh the -max-inflight admission gate by sample count: an explicit batch of n inputs claims n units instead of 1")
	requestTimeout := flag.Duration("request-timeout", 0,
		"per-request deadline covering batching and queueing; exceeded requests get HTTP 503 instead of hanging (0 = none)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second,
		"grace period for in-flight requests on shutdown")
	storeDir := flag.String("store-dir", "",
		"durable content-addressed artifact store directory: loaded artifacts persist there by SHA-256 with an in-memory read cache (empty = in-memory only)")
	peers := flag.String("peers", "",
		"comma-separated peer base URLs; artifacts missing locally are fetched by hash from a peer's GET /v1/artifacts/{hash}, verified, and cached into the local store tiers")
	storeGC := flag.Duration("store-gc", 0,
		"run a reference-aware artifact store sweep on this interval, removing blobs no loaded model references (0 disables; POST /v1/store/gc is always available)")

	// Router mode.
	route := flag.String("route", "",
		"comma-separated replica addresses; run as a resilient routing tier instead of serving models (mutually exclusive with -model)")
	probeInterval := flag.Duration("probe-interval", time.Second, "router: delay between replica health probes")
	probeTimeout := flag.Duration("probe-timeout", 500*time.Millisecond, "router: per-probe timeout (a timed-out probe counts as a breaker failure)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "router: consecutive failures that open a replica's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "router: how long an open breaker sheds load before a half-open trial")
	retries := flag.Int("retries", 2, "router: extra attempts after a retriable failure (0 disables)")
	retryBackoff := flag.Duration("retry-backoff", 10*time.Millisecond, "router: exponential-backoff base for the full-jitter retry delay")
	retryBackoffMax := flag.Duration("retry-backoff-max", 250*time.Millisecond, "router: cap on the retry backoff delay")
	hedge := flag.Duration("hedge", 0, "router: hedge idempotent requests that have not answered after this delay (0 disables)")

	// Fault injection (chaos drills), applies to either mode.
	flag.Var(&faultSpecs, "fault",
		"deterministic fault-injection rule, e.g. 'error=503@p=0.2', '/v1/infer:latency=50ms@p=0.3', 'drop@p=0.1'; repeatable")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the fault-injection schedule")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof profiling endpoints on this separate address, e.g. 127.0.0.1:6060 (off by default; never expose publicly)")
	flag.Parse()

	startPprof(*pprofAddr)

	faultRules, err := faults.ParseRules(faultSpecs)
	if err != nil {
		fatal(err)
	}

	if *route != "" {
		if len(models) > 0 {
			fatal(errors.New("-route and -model are mutually exclusive: a router proxies, it does not serve models"))
		}
		runRouter(*route, *addr, routerConfig{
			probeInterval:    *probeInterval,
			probeTimeout:     *probeTimeout,
			breakerThreshold: *breakerThreshold,
			breakerCooldown:  *breakerCooldown,
			retries:          *retries,
			backoffBase:      *retryBackoff,
			backoffMax:       *retryBackoffMax,
			hedge:            *hedge,
			shutdownTimeout:  *shutdownTimeout,
		}, faultRules, *faultSeed)
		return
	}

	var peerURLs []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerURLs = append(peerURLs, p)
		}
	}
	if len(models) == 0 && len(peerURLs) == 0 {
		fmt.Fprintln(os.Stderr, "positrond: at least one -model is required (or -peers to join empty, or -route for router mode)")
		flag.Usage()
		os.Exit(2)
	}

	regOpts := []registry.Option{
		registry.WithRuntimeOptions(
			engine.WithWorkers(*workers),
			engine.WithQueueDepth(*queue),
			engine.WithWarmTables(),
		),
		registry.WithBatchWindow(*batchWindow),
		registry.WithMaxBatch(*maxBatch),
		registry.WithFlushPipeline(*flushPipeline),
		registry.WithMaxInFlight(*maxInFlight),
		registry.WithRequestTimeout(*requestTimeout),
	}
	if *costAware {
		regOpts = append(regOpts, registry.WithCostAwareAdmission())
	}
	// Store composition: local tiers first (mem, optionally mem-over-disk),
	// then the read-only peer-fetch tier as the slowest layer — a local
	// miss pulls from a peer, verifies, and persists into the local tiers.
	var local store.Store = store.NewMem()
	if *storeDir != "" {
		disk, err := store.NewDisk(*storeDir)
		if err != nil {
			fatal(fmt.Errorf("opening artifact store: %w", err))
		}
		local = store.NewUnion(local, disk)
	}
	if *storeDir != "" || len(peerURLs) > 0 {
		st := local
		if len(peerURLs) > 0 {
			st = store.NewUnion(local, store.NewRemote(peerURLs))
		}
		regOpts = append(regOpts, registry.WithStore(st))
	}
	reg := registry.New(regOpts...)
	for _, mf := range models {
		if err := reg.LoadPath(mf.name, mf.path); err != nil {
			fatal(err)
		}
	}
	def := *defaultModel
	if def == "" && len(models) > 0 {
		def = models[0].name
	}
	if def != "" {
		if _, err := reg.Stat(def); err != nil {
			fatal(fmt.Errorf("default model %q is not among the loaded models", def))
		}
	}
	dir := *modelDir
	if dir == "" && len(models) > 0 {
		dir = filepath.Dir(models[0].path)
	}
	var srvOpts []server.Option
	if dir != "" {
		srvOpts = append(srvOpts, server.WithModelDir(dir))
	}
	srv := server.New(reg, def, srvOpts...)

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: withFaults(srv, faultRules, *faultSeed),
		// Slow-client hardening: a stalled peer must not pin a goroutine
		// and descriptor forever. Bodies are bounded (server.MaxBodyBytes /
		// server.MaxArtifactBytes).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	for _, stat := range reg.Stats() {
		marker := " "
		if stat.Name == def {
			marker = "*"
		}
		fmt.Printf("positrond: %s %-20s %s (%s, %d features -> %d classes, %d workers, window %s, max batch %d, sha256:%.12s)\n",
			marker, stat.Name, stat.Model, stat.Kind, stat.InputDim, stat.OutputDim,
			stat.Workers, stat.BatchWindow, stat.MaxBatch, stat.ContentHash)
	}
	if *storeDir != "" {
		st := reg.StoreStats()
		fmt.Printf("positrond: artifact store %s: %d object(s), %d bytes\n", *storeDir, st.Objects, st.Bytes)
	}
	if len(peerURLs) > 0 {
		fmt.Printf("positrond: peer artifact fetch from %d peer(s): %s\n", len(peerURLs), strings.Join(peerURLs, ", "))
	}
	if *storeGC > 0 {
		fmt.Printf("positrond: artifact store GC every %s\n", *storeGC)
	}
	if *batchWindow > 0 && *maxBatch > 1 {
		fmt.Printf("positrond: flush pipeline depth %d per model\n", *flushPipeline)
	}
	if *maxInFlight > 0 || *requestTimeout > 0 {
		mode := "per request"
		if *costAware {
			mode = "per sample (cost-aware)"
		}
		fmt.Printf("positrond: admission control: max in-flight %d (0 = unlimited, %s), request timeout %s\n",
			*maxInFlight, mode, *requestTimeout)
	}
	if len(faultRules) > 0 {
		fmt.Printf("positrond: fault injection ACTIVE (%d rule(s), seed %d)\n", len(faultRules), *faultSeed)
	}
	fmt.Printf("positrond: serving %d model(s) on %s\n", reg.Len(), *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *storeGC > 0 {
		go func() {
			tick := time.NewTicker(*storeGC)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if removed, freed, err := reg.GC(); err != nil {
						fmt.Fprintln(os.Stderr, "positrond: store gc:", err)
					} else if removed > 0 {
						fmt.Printf("positrond: store gc removed %d blob(s), %d bytes\n", removed, freed)
					}
				}
			}
		}()
	}
	select {
	case <-ctx.Done():
		fmt.Println("positrond: shutting down...")
		// Flip /healthz to 503 before closing the listener so routers
		// and load balancers drain away instead of eating resets.
		srv.BeginShutdown()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "positrond: shutdown:", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("positrond: bye")
}

// routerConfig carries the router-mode flag values.
type routerConfig struct {
	probeInterval    time.Duration
	probeTimeout     time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	retries          int
	backoffBase      time.Duration
	backoffMax       time.Duration
	hedge            time.Duration
	shutdownTimeout  time.Duration
}

// runRouter runs positrond as the resilient routing tier.
func runRouter(route, addr string, cfg routerConfig, faultRules []faults.Rule, faultSeed uint64) {
	var addrs []string
	for _, a := range strings.Split(route, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	rt, err := router.New(addrs,
		router.WithProbeInterval(cfg.probeInterval),
		router.WithProbeTimeout(cfg.probeTimeout),
		router.WithBreakerThreshold(cfg.breakerThreshold),
		router.WithBreakerCooldown(cfg.breakerCooldown),
		router.WithMaxRetries(cfg.retries),
		router.WithBackoff(cfg.backoffBase, cfg.backoffMax),
		router.WithHedgeDelay(cfg.hedge),
	)
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           withFaults(rt, faultRules, faultSeed),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	fmt.Printf("positrond: routing across %d replica(s): %s\n", len(addrs), strings.Join(addrs, ", "))
	fmt.Printf("positrond: breaker threshold %d cooldown %s, retries %d (backoff %s..%s), probe every %s, hedge %s\n",
		cfg.breakerThreshold, cfg.breakerCooldown, cfg.retries, cfg.backoffBase, cfg.backoffMax,
		cfg.probeInterval, cfg.hedge)
	if len(faultRules) > 0 {
		fmt.Printf("positrond: fault injection ACTIVE (%d rule(s), seed %d)\n", len(faultRules), faultSeed)
	}
	fmt.Printf("positrond: router listening on %s\n", addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Println("positrond: shutting down...")
		rt.BeginShutdown()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "positrond: shutdown:", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
	rt.Close()
	fmt.Println("positrond: bye")
}

// startPprof serves the net/http/pprof endpoints on their own listener
// when -pprof names an address. Profiling stays off the serving port so
// operators can firewall it separately; an explicit mux keeps anything
// else registered on http.DefaultServeMux from leaking out with it.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintln(os.Stderr, "positrond: pprof listener:", err)
		}
	}()
	fmt.Printf("positrond: pprof profiling on http://%s/debug/pprof/\n", addr)
}

// withFaults wraps h in the fault injector when rules are configured.
func withFaults(h http.Handler, rules []faults.Rule, seed uint64) http.Handler {
	if len(rules) == 0 {
		return h
	}
	return faults.New(seed, rules...).Wrap(h)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "positrond:", err)
	os.Exit(1)
}
