// Command positrond serves quantised Deep Positron artifacts over HTTP:
// load one or more versioned model files (uniform or mixed precision)
// into the serving registry, start a worker-pool inference runtime and a
// dynamic micro-batcher per model, and expose the JSON API.
//
// Usage:
//
//	positrond -model iris.json                         # one model
//	positrond -model iris=iris.json -model wbc=wbc.json \
//	          -default iris -batch-window 2ms -max-batch 64 \
//	          -max-inflight 256 -request-timeout 2s
//
// Each -model flag is either name=path or a bare path (the name is then
// derived from the file name: models/Iris.quant.json -> "Iris"). The
// first -model is the default served by the /v1/infer and /v1/model
// aliases unless -default names another.
//
// Endpoints:
//
//	GET    /healthz                  liveness probe
//	GET    /v1/models                list loaded models
//	POST   /v1/models                load {"name":..., "path":...} or
//	                                 {"name":..., "artifact":{...}}
//	GET    /v1/models/{name}         model metadata and stats
//	DELETE /v1/models/{name}         graceful unload
//	POST   /v1/models/{name}/infer   {"input": [...]} or {"inputs": [[...], ...]}
//	GET    /v1/metrics               per-model batching and latency metrics
//	GET    /v1/model, POST /v1/infer default-model aliases
//
// SIGINT/SIGTERM shut the daemon down gracefully: the listener stops
// accepting, in-flight requests finish, then every model's worker pool
// drains.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/registry"
	"repro/internal/server"
)

// modelFlag is one -model value: an optional name and an artifact path.
type modelFlag struct {
	name, path string
}

// modelFlags collects repeated -model values.
type modelFlags []modelFlag

func (m *modelFlags) String() string {
	parts := make([]string, len(*m))
	for i, f := range *m {
		parts[i] = f.name + "=" + f.path
	}
	return strings.Join(parts, ",")
}

func (m *modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		path = v
		name = deriveName(v)
	}
	if name == "" || path == "" {
		return fmt.Errorf("want name=path or path, got %q", v)
	}
	*m = append(*m, modelFlag{name: name, path: path})
	return nil
}

// deriveName turns an artifact path into a model name:
// models/Iris.quant.json -> "Iris".
func deriveName(path string) string {
	name := filepath.Base(path)
	name = strings.TrimSuffix(name, filepath.Ext(name))
	name = strings.TrimSuffix(name, ".quant")
	return name
}

func main() {
	var models modelFlags
	flag.Var(&models, "model", "name=path (or path) of a saved model artifact; repeatable (at least one required)")
	defaultModel := flag.String("default", "", "model served by the /v1/infer and /v1/model aliases (default: the first -model)")
	modelDir := flag.String("model-dir", "",
		"directory POST /v1/models path loads may read artifacts from (default: the first -model's directory; uploads are always allowed)")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "per-model inference worker count (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "per-model job queue depth (0 = 2x workers)")
	batchWindow := flag.Duration("batch-window", registry.DefaultBatchWindow,
		"micro-batching window: concurrent single inferences arriving within it share one batch (0 disables)")
	maxBatch := flag.Int("max-batch", registry.DefaultMaxBatch,
		"flush a coalesced batch at this size instead of waiting out the window")
	maxInFlight := flag.Int("max-inflight", 0,
		"per-model cap on concurrently admitted inference requests; beyond it requests are shed with HTTP 429 (0 = unlimited)")
	requestTimeout := flag.Duration("request-timeout", 0,
		"per-request deadline covering batching and queueing; exceeded requests get HTTP 503 instead of hanging (0 = none)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second,
		"grace period for in-flight requests on shutdown")
	flag.Parse()

	if len(models) == 0 {
		fmt.Fprintln(os.Stderr, "positrond: at least one -model is required")
		flag.Usage()
		os.Exit(2)
	}

	reg := registry.New(
		registry.WithRuntimeOptions(
			engine.WithWorkers(*workers),
			engine.WithQueueDepth(*queue),
			engine.WithWarmTables(),
		),
		registry.WithBatchWindow(*batchWindow),
		registry.WithMaxBatch(*maxBatch),
		registry.WithMaxInFlight(*maxInFlight),
		registry.WithRequestTimeout(*requestTimeout),
	)
	for _, mf := range models {
		if err := reg.LoadPath(mf.name, mf.path); err != nil {
			fatal(err)
		}
	}
	def := *defaultModel
	if def == "" {
		def = models[0].name
	}
	if _, err := reg.Stat(def); err != nil {
		fatal(fmt.Errorf("default model %q is not among the loaded models", def))
	}
	dir := *modelDir
	if dir == "" {
		dir = filepath.Dir(models[0].path)
	}
	srv := server.New(reg, def, server.WithModelDir(dir))

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// Slow-client hardening: a stalled peer must not pin a goroutine
		// and descriptor forever. Bodies are bounded (server.MaxBodyBytes /
		// server.MaxArtifactBytes).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	for _, stat := range reg.Stats() {
		marker := " "
		if stat.Name == def {
			marker = "*"
		}
		fmt.Printf("positrond: %s %-20s %s (%s, %d features -> %d classes, %d workers, window %s, max batch %d)\n",
			marker, stat.Name, stat.Model, stat.Kind, stat.InputDim, stat.OutputDim,
			stat.Workers, stat.BatchWindow, stat.MaxBatch)
	}
	if *maxInFlight > 0 || *requestTimeout > 0 {
		fmt.Printf("positrond: admission control: max in-flight %d (0 = unlimited), request timeout %s\n",
			*maxInFlight, *requestTimeout)
	}
	fmt.Printf("positrond: serving %d model(s) on %s\n", reg.Len(), *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Println("positrond: shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "positrond: shutdown:", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("positrond: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "positrond:", err)
	os.Exit(1)
}
