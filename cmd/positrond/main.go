// Command positrond serves a quantised Deep Positron artifact over HTTP:
// load a versioned model file (uniform or mixed precision), start the
// worker-pool inference runtime and expose the JSON API.
//
// Usage:
//
//	positrond -model iris.json [-addr :8080] [-workers N] [-queue N]
//
// Endpoints:
//
//	GET  /healthz   liveness probe
//	GET  /v1/model  model metadata
//	POST /v1/infer  {"input": [...]} or {"inputs": [[...], ...]}
//
// SIGINT/SIGTERM shut the daemon down gracefully: the listener stops
// accepting, in-flight requests finish, then the worker pool drains.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
)

func main() {
	modelPath := flag.String("model", "", "path to a saved model artifact (required)")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "inference worker count (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "job queue depth (0 = 2x workers)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second,
		"grace period for in-flight requests on shutdown")
	flag.Parse()

	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "positrond: -model is required")
		flag.Usage()
		os.Exit(2)
	}

	model, err := core.LoadModel(*modelPath)
	if err != nil {
		fatal(err)
	}
	srv, err := server.New(model,
		engine.WithWorkers(*workers),
		engine.WithQueueDepth(*queue),
		engine.WithWarmTables(),
	)
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// Slow-client hardening: a stalled peer must not pin a goroutine
		// and descriptor forever. Bodies are small (server.MaxBodyBytes).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	fmt.Printf("positrond: serving %s (%s, %d features -> %d classes) on %s with %d workers\n",
		model, model.Kind(), model.InputDim(), model.OutputDim(), *addr, srv.Runtime().Workers())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Println("positrond: shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "positrond: shutdown:", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("positrond: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "positrond:", err)
	os.Exit(1)
}
