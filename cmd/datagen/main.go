// Command datagen exports the synthetic evaluation datasets as CSV, so
// the exact data behind every accuracy number can be inspected or fed to
// external tools.
//
// Usage:
//
//	datagen -dataset iris|wbc|mushroom [-split train|test|all] [-seed N]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/datasets"
)

func main() {
	name := flag.String("dataset", "iris", "iris | wbc | mushroom")
	split := flag.String("split", "all", "train | test | all")
	seed := flag.Uint64("seed", 0, "generator seed override (0 = canonical)")
	flag.Parse()

	var train, test *datasets.Dataset
	switch *name {
	case "iris":
		s := orDefault(*seed, datasets.IrisSeed)
		train, test = datasets.IrisSplit(s)
	case "wbc":
		s := orDefault(*seed, datasets.WBCSeed)
		train, test = datasets.BreastCancerSplit(s)
	case "mushroom":
		s := orDefault(*seed, datasets.MushroomSeed)
		train, test = datasets.MushroomSplit(s)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *name)
		os.Exit(2)
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()

	header := []string{"split", "label"}
	for j := 0; j < train.Dim(); j++ {
		header = append(header, fmt.Sprintf("f%d", j))
	}
	if err := w.Write(header); err != nil {
		fatal(err)
	}
	emit := func(tag string, d *datasets.Dataset) {
		for i := range d.X {
			row := make([]string, 0, 2+d.Dim())
			row = append(row, tag, strconv.Itoa(d.Y[i]))
			for _, v := range d.X[i] {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			}
			if err := w.Write(row); err != nil {
				fatal(err)
			}
		}
	}
	if *split == "train" || *split == "all" {
		emit("train", train)
	}
	if *split == "test" || *split == "all" {
		emit("test", test)
	}
}

func orDefault(v, def uint64) uint64 {
	if v == 0 {
		return def
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
