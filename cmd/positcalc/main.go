// Command positcalc is a posit-format calculator and explorer.
//
// Usage:
//
//	positcalc -n 8 -es 0 enc 3.14          # encode a decimal into a posit
//	positcalc -n 8 -es 0 dec 01010010      # decode a bit pattern
//	positcalc -n 6 -es 1 table             # list every value of a format
//	positcalc -n 8 -es 0 info              # format characteristics
//	positcalc -n 8 -es 0 mul 1.5 2.25      # arithmetic (mul/add/sub/div/sqrt)
//	positcalc -n 8 -es 0 dot 1,2,3 0.5,4,-1  # exact quire dot product
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/posit"
)

func main() {
	n := flag.Uint("n", 8, "posit width in bits (3..32)")
	es := flag.Uint("es", 0, "exponent field width (0..5)")
	flag.Parse()

	f, err := posit.NewFormat(*n, *es)
	if err != nil {
		fatal(err)
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: positcalc [-n N] [-es ES] enc|dec|table|info|mul|add|sub|div|sqrt|dot ...")
		os.Exit(2)
	}
	switch args[0] {
	case "enc":
		needArgs(args, 2)
		x := parseFloat(args[1])
		p := f.FromFloat64(x)
		fmt.Printf("%s\nbits: %s (0x%0*x)\nvalue: %g\nerror: %g\n",
			p, p.BitString(), int(*n+3)/4, p.Bits(), p.Float64(), p.Float64()-x)
	case "dec":
		needArgs(args, 2)
		p, err := f.ParseBits(args[1])
		if err != nil {
			fatal(err)
		}
		describe(p)
	case "table":
		for _, p := range f.Posits() {
			if p.IsNaR() {
				fmt.Printf("%0*b  NaR\n", *n, p.Bits())
				continue
			}
			fmt.Printf("%0*b  %- 14g %s\n", *n, p.Bits(), p.Float64(), p.BitString())
		}
	case "info":
		fmt.Printf("format:        %s\n", f)
		fmt.Printf("useed:         %g\n", f.USeed())
		fmt.Printf("maxpos:        %g\n", f.MaxPos().Float64())
		fmt.Printf("minpos:        %g\n", f.MinPos().Float64())
		fmt.Printf("dynamic range: %.2f decades\n", f.DynamicRangeLog10())
		fmt.Printf("patterns:      %d (incl. 0 and NaR)\n", f.Count())
		if f.FastSigmoidValid() {
			fmt.Printf("fast sigmoid:  available (es=0)\n")
		}
		qs := posit.QuireSize(f, 64)
		fmt.Printf("quire (k=64):  %d bits\n", qs)
	case "mul", "add", "sub", "div":
		needArgs(args, 3)
		a := f.FromFloat64(parseFloat(args[1]))
		b := f.FromFloat64(parseFloat(args[2]))
		var r posit.Posit
		switch args[0] {
		case "mul":
			r = a.Mul(b)
		case "add":
			r = a.Add(b)
		case "sub":
			r = a.Sub(b)
		case "div":
			r = a.Div(b)
		}
		fmt.Printf("%g %s %g = %g   (operands rounded to %g, %g)\n",
			parseFloat(args[1]), args[0], parseFloat(args[2]),
			r.Float64(), a.Float64(), b.Float64())
		describe(r)
	case "sqrt":
		needArgs(args, 2)
		a := f.FromFloat64(parseFloat(args[1]))
		describe(a.Sqrt())
	case "dot":
		needArgs(args, 3)
		w := parseVector(f, args[1])
		a := parseVector(f, args[2])
		if len(w) != len(a) {
			fatal(fmt.Errorf("vector lengths differ: %d vs %d", len(w), len(a)))
		}
		r := posit.DotProduct(w, a)
		fmt.Printf("exact dot product (single rounding): %g\n", r.Float64())
		describe(r)
	default:
		fatal(fmt.Errorf("unknown command %q", args[0]))
	}
}

func describe(p posit.Posit) {
	if p.IsNaR() {
		fmt.Println("NaR (Not a Real)")
		return
	}
	fmt.Printf("bits:  %s\nvalue: %g\n", p.BitString(), p.Float64())
	if sign, k, e, frac, fw, ok := p.Decode(); ok {
		fmt.Printf("sign=%v regime=%d exp=%d frac=0b%0*b (%d bits)\n", sign, k, e, int(fw), frac, fw)
	}
}

func parseFloat(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		fatal(err)
	}
	return v
}

func parseVector(f posit.Format, s string) []posit.Posit {
	parts := strings.Split(s, ",")
	out := make([]posit.Posit, len(parts))
	for i, p := range parts {
		out[i] = f.FromFloat64(parseFloat(strings.TrimSpace(p)))
	}
	return out
}

func needArgs(args []string, n int) {
	if len(args) < n {
		fatal(fmt.Errorf("%s needs %d argument(s)", args[0], n-1))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "positcalc:", err)
	os.Exit(1)
}
