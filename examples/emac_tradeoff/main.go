// EMAC trade-off: walk the accuracy-vs-energy design space on the
// Wisconsin Breast Cancer task — the paper's Fig. 9 analysis as a
// library workflow. The deployed network consumes raw clinical features
// (standardization folded into the first layer), which is the regime
// where the three number systems separate sharply.
package main

import (
	"fmt"
	"sort"

	positron "repro"
)

func main() {
	train, test := positron.BreastCancerSplit(0x5690)
	std := positron.FitStandardizer(train)

	net := positron.NewMLP([]int{30, 16, 8, 2}, 101)
	cfg := positron.DefaultTrainConfig()
	cfg.Epochs = 120
	cfg.LR = 0.02
	positron.Train(net, std.Apply(train), cfg)
	net.FoldInputAffine(std.InputAffine())

	acc32 := positron.Accuracy32(net, test)
	fmt.Printf("WBC float32 baseline: %.2f%% (190 inference samples)\n\n", 100*acc32)

	type point struct {
		arith positron.Arithmetic
		acc   float64
		edp   float64
	}
	var pts []point
	for n := uint(5); n <= 8; n++ {
		posits, floats, fixeds := positron.Candidates(n)
		for _, cands := range [][]positron.Arithmetic{posits, floats, fixeds} {
			for _, a := range cands {
				dp := positron.QuantizeNetwork(net, a)
				rep, ok := positron.Synthesize(a, 32)
				if !ok {
					continue
				}
				pts = append(pts, point{a, dp.Accuracy(test), rep.EDP})
			}
		}
	}

	// Pareto frontier: highest accuracy for increasing energy budget.
	sort.Slice(pts, func(i, j int) bool { return pts[i].edp < pts[j].edp })
	fmt.Println("accuracy/EDP Pareto frontier (all formats, n in [5,8]):")
	fmt.Printf("%-18s %-10s %-12s %s\n", "arithmetic", "bits", "EDP (J·s)", "accuracy")
	bestSoFar := -1.0
	for _, p := range pts {
		if p.acc > bestSoFar {
			bestSoFar = p.acc
			fmt.Printf("%-18s %-10d %-12.3g %6.2f%%\n",
				p.arith.Name(), p.arith.BitWidth(), p.edp, 100*p.acc)
		}
	}
	fmt.Printf("\n(float32 reference: %6.2f%%)\n", 100*acc32)
}
