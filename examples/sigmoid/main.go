// Sigmoid: Gustafson's zero-arithmetic sigmoid approximation for es=0
// posits — flip the sign bit, shift right by two. This is the hardware
// bonus the posit-DNN literature highlights: a full activation function
// for the cost of two wire operations.
package main

import (
	"fmt"
	"math"

	positron "repro"
)

func main() {
	f := positron.MustPositFormat(8, 0)
	fmt.Println("fast sigmoid on posit(8,0): σ(x) ≈ bits(x) XOR 0x80 >> 2")
	fmt.Printf("%-8s %-12s %-12s %-10s\n", "x", "fast σ(x)", "exact σ(x)", "|error|")
	maxErr := 0.0
	for _, x := range []float64{-16, -8, -4, -2, -1, -0.5, 0, 0.5, 1, 2, 4, 8, 16} {
		p := f.FromFloat64(x)
		fast := p.FastSigmoid().Float64()
		exact := 1 / (1 + math.Exp(-p.Float64()))
		err := math.Abs(fast - exact)
		if err > maxErr {
			maxErr = err
		}
		fmt.Printf("%-8g %-12g %-12.4f %-10.4f\n", p.Float64(), fast, exact, err)
	}
	fmt.Printf("\nmax |error| on the sample grid: %.4f\n", maxErr)

	// Use it as the hidden activation of a Deep Positron network.
	train, test := positron.IrisSplit(0x1715)
	strain, stest := positron.Standardize(train, test)
	net := positron.NewMLP([]int{4, 10, 6, 3}, 7)
	cfg := positron.DefaultTrainConfig()
	cfg.Epochs = 150
	positron.Train(net, strain, cfg)

	relu := positron.QuantizeNetwork(net, positron.PositArith(8, 0))
	sig := positron.QuantizeNetwork(net, positron.PositArith(8, 0))
	sig.Sigmoid = true
	fmt.Printf("\nIris, posit(8,0) Deep Positron:\n")
	fmt.Printf("  ReLU hidden activations:         %.1f%%\n", 100*relu.Accuracy(stest))
	fmt.Printf("  fast-sigmoid hidden activations: %.1f%% (net was trained with ReLU)\n",
		100*sig.Accuracy(stest))
}
