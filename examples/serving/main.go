// Serving: the deployment path end to end — train in float64, quantise
// twice (a uniform posit(8,0) network and a mixed-precision one), load
// both into the multi-model registry, serve them side by side over HTTP
// with dynamic micro-batching, and query load/infer/metrics/unload —
// exactly what cmd/positrond does as a standalone daemon. The finale is
// the artifact plane: a second replica with an empty store joins, loads
// a model purely by content hash through the peer-fetch tier, serves
// bit-identical logits, and a reference-aware GC sweep reclaims the
// blob the earlier unload stranded.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	positron "repro"
)

func main() {
	// Train on standardized features; keep the standardizer so the
	// deployed artifacts can consume raw measurements.
	train, test := positron.IrisSplit(0x1715)
	std := positron.FitStandardizer(train)
	net64 := positron.NewMLP([]int{4, 10, 6, 3}, 7)
	cfg := positron.DefaultTrainConfig()
	cfg.Epochs = 150
	cfg.LR = 0.05
	cfg.LRDecay = 0.99
	positron.Train(net64, std.Apply(train), cfg)

	// Two deployments of the same network: uniform posit(8,0), and one
	// posit per layer (the paper's precision-adaptable EMACs).
	uni := positron.QuantizeNetwork(net64, positron.PositArith(8, 0))
	uni.Stand = std
	mixed := positron.QuantizeMixed(net64, []positron.Arithmetic{
		positron.PositArith(8, 0), positron.PositArith(6, 0), positron.PositArith(8, 0),
	})
	mixed.Stand = std

	dir, err := os.MkdirTemp("", "positron-serving")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	// One artifact per format: the uniform network as a compact binary
	// artifact (content-addressed, fast to load), the mixed one as JSON.
	// The registry sniffs the format, so serving code never cares.
	uniPath := filepath.Join(dir, "posit8.quant.bin")
	mixedPath := filepath.Join(dir, "mixed.json")
	if err := positron.SaveArtifact(uni, uniPath); err != nil {
		panic(err)
	}
	if err := mixed.Save(mixedPath); err != nil {
		panic(err)
	}

	// The serving side: a registry with micro-batching and admission
	// control, two models, one HTTP handler — positrond in a few lines.
	// Max in-flight 8 means a burst beyond 8 concurrent requests is shed
	// with 429 instead of queueing without bound; the request timeout
	// bounds how long an admitted request may sit in the queues.
	reg := positron.NewRegistry(
		positron.WithRuntimeOptions(positron.WithWorkers(4), positron.WithWarmTables()),
		positron.WithBatchWindow(2*time.Millisecond),
		positron.WithMaxBatch(32),
		positron.WithMaxInFlight(8),
		positron.WithRequestTimeout(2*time.Second),
	)
	if err := reg.LoadPath("posit8", uniPath); err != nil {
		panic(err)
	}
	// WithModelDir scopes HTTP path loads to our artifact directory
	// (uploads are always allowed; arbitrary paths never are).
	srv := positron.NewServer(reg, "posit8", positron.WithModelDir(dir))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("daemon listening on", base)

	// Load the second model over HTTP, as an operator would.
	loadBody, _ := json.Marshal(map[string]string{"name": "mixed", "path": mixedPath})
	resp := post(base+"/v1/models", loadBody)
	fmt.Printf("loaded second model over HTTP: %d\n", resp.StatusCode)
	resp.Body.Close()

	var list struct {
		Models []struct {
			Name          string   `json:"name"`
			Kind          string   `json:"kind"`
			Arithmetics   []string `json:"arithmetics"`
			ContentHash   string   `json:"content_hash"`
			ArtifactBytes int64    `json:"artifact_bytes"`
		} `json:"models"`
	}
	getInto(base+"/v1/models", &list)
	for _, m := range list.Models {
		fmt.Printf("  serving %-8s kind=%-7s arithmetics=%v artifact=%dB sha256:%.12s\n",
			m.Name, m.Kind, m.Arithmetics, m.ArtifactBytes, m.ContentHash)
	}

	// Content addressing in the API: the model list's ETag fingerprints
	// the loaded set, so a replica syncing membership polls with
	// If-None-Match and pays a 304 — no body — while nothing changed.
	listResp, err := http.Get(base + "/v1/models")
	if err != nil {
		panic(err)
	}
	io.Copy(io.Discard, listResp.Body)
	listResp.Body.Close()
	etag := listResp.Header.Get("ETag")
	req304, _ := http.NewRequest(http.MethodGet, base+"/v1/models", nil)
	req304.Header.Set("If-None-Match", etag)
	r304, err := http.DefaultClient.Do(req304)
	if err != nil {
		panic(err)
	}
	io.Copy(io.Discard, r304.Body)
	r304.Body.Close()
	fmt.Printf("membership sync poll: ETag %s, If-None-Match -> %d (%s)\n",
		etag, r304.StatusCode, http.StatusText(r304.StatusCode))

	// Query both models with the same raw sample; different precision
	// layouts, one API.
	sample, _ := json.Marshal(map[string]any{"input": test.X[0]})
	for _, name := range []string{"posit8", "mixed"} {
		var out struct {
			Result struct {
				Logits []float64 `json:"logits"`
				Class  int       `json:"class"`
			} `json:"result"`
		}
		r := post(base+"/v1/models/"+name+"/infer", sample)
		decode(r, &out)
		fmt.Printf("  %-8s -> class %d, logits %.3v\n", name, out.Result.Class, out.Result.Logits)
	}

	// A concurrent burst of single-sample requests, well past the
	// max-in-flight cap of 8: admitted requests coalesce into shared
	// runtime batches, the overflow is shed immediately with 429 +
	// Retry-After — bounded latency for the admitted, fast feedback for
	// the shed.
	var (
		wg                  sync.WaitGroup
		statusMu            sync.Mutex
		served, shed, other int
	)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{"input": test.X[i%len(test.X)]})
			r := post(base+"/v1/infer", body) // default-model alias
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
			statusMu.Lock()
			defer statusMu.Unlock()
			switch r.StatusCode {
			case http.StatusOK:
				served++
			case http.StatusTooManyRequests:
				shed++
			default:
				other++ // e.g. 503 when a slow host trips the request timeout
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("burst of 32 vs max in-flight 8: %d served, %d shed with 429, %d other\n",
		served, shed, other)

	var metrics struct {
		Models []struct {
			Name    string `json:"name"`
			Metrics struct {
				Requests      int64            `json:"requests"`
				Batches       int64            `json:"batches"`
				MaxCoalesced  int              `json:"max_coalesced"`
				Rejected      int64            `json:"rejected"`
				TimedOut      int64            `json:"timed_out"`
				InFlight      int64            `json:"in_flight"`
				BatchSizeHist map[string]int64 `json:"batch_size_hist"`
				P50Ms         float64          `json:"p50_ms"`
				P99Ms         float64          `json:"p99_ms"`
			} `json:"metrics"`
		} `json:"models"`
	}
	getInto(base+"/v1/metrics", &metrics)
	for _, m := range metrics.Models {
		fmt.Printf("  metrics %-8s requests=%d batches=%d max_coalesced=%d rejected=%d timed_out=%d in_flight=%d hist=%v p50=%.2fms p99=%.2fms\n",
			m.Name, m.Metrics.Requests, m.Metrics.Batches, m.Metrics.MaxCoalesced,
			m.Metrics.Rejected, m.Metrics.TimedOut, m.Metrics.InFlight,
			m.Metrics.BatchSizeHist, m.Metrics.P50Ms, m.Metrics.P99Ms)
	}

	// Graceful unload over HTTP: the name disappears immediately,
	// in-flight work drains, the worker pool closes.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/models/mixed", nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		panic(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	getInto(base+"/v1/models", &list)
	fmt.Printf("after unload: %d model(s) still serving\n", len(list.Models))

	// Peer artifact fetch: a second replica boots with an EMPTY store —
	// no artifact files, no -model flags — and a read-only remote tier
	// pointing at the first. Loading by content hash pulls the canonical
	// bytes over /v1/artifacts/{hash}, verifies them against the address,
	// persists them locally, and serves bit-identical logits.
	var stat struct {
		ContentHash string `json:"content_hash"`
	}
	getInto(base+"/v1/models/posit8", &stat)
	regB := positron.NewRegistry(
		positron.WithRuntimeOptions(positron.WithWorkers(2)),
		positron.WithArtifactStore(positron.NewUnionStore(
			positron.NewMemStore(), positron.NewRemoteStore([]string{base}))),
	)
	if err := regB.LoadHash("posit8", mustHash(stat.ContentHash)); err != nil {
		panic(err)
	}
	srvB := positron.NewServer(regB, "posit8")
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	httpB := &http.Server{Handler: srvB}
	go func() { _ = httpB.Serve(lnB) }()
	baseB := "http://" + lnB.Addr().String()
	var outA, outB struct {
		Result struct {
			Logits []float64 `json:"logits"`
		} `json:"result"`
	}
	decode(post(base+"/v1/models/posit8/infer", sample), &outA)
	decode(post(baseB+"/v1/models/posit8/infer", sample), &outB)
	fmt.Printf("peer-fetched replica: logits match origin = %v (sha256:%.12s)\n",
		fmt.Sprint(outA.Result.Logits) == fmt.Sprint(outB.Result.Logits), stat.ContentHash)

	// Reference-aware GC: unloading "mixed" above stranded its blob in
	// the origin's store; a sweep reclaims exactly the unreferenced bytes
	// while every loaded model's artifact is pinned in place.
	var gc struct {
		Removed    int   `json:"removed"`
		FreedBytes int64 `json:"freed_bytes"`
	}
	decode(post(base+"/v1/store/gc", nil), &gc)
	fmt.Printf("store gc: removed %d unreferenced blob(s), freed %d bytes\n", gc.Removed, gc.FreedBytes)

	shutdownB, cancelB := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelB()
	if err := httpB.Shutdown(shutdownB); err != nil {
		panic(err)
	}
	if err := srvB.Close(); err != nil {
		panic(err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		panic(err)
	}
	if err := srv.Close(); err != nil {
		panic(err)
	}
	fmt.Println("daemon closed cleanly")
}

func mustHash(s string) positron.ArtifactHash {
	h, err := positron.ParseArtifactHash(s)
	if err != nil {
		panic(err)
	}
	return h
}

func post(url string, body []byte) *http.Response {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	return resp
}

func decode(resp *http.Response, out any) {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		panic(err)
	}
}

func getInto(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		panic(err)
	}
	decode(resp, out)
}
