// Serving: the deployment path end to end — train in float64, quantise
// (here with a different posit per layer), save the versioned artifact,
// reload it behind the Model interface and serve it with the
// context-aware Runtime, exactly as cmd/positrond does over HTTP.
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	positron "repro"
)

func main() {
	// Train on standardized features; keep the standardizer so the
	// deployed artifact can consume raw measurements.
	train, test := positron.IrisSplit(0x1715)
	std := positron.FitStandardizer(train)
	net := positron.NewMLP([]int{4, 10, 6, 3}, 7)
	cfg := positron.DefaultTrainConfig()
	cfg.Epochs = 150
	cfg.LR = 0.05
	cfg.LRDecay = 0.99
	positron.Train(net, std.Apply(train), cfg)

	// Quantise with one arithmetic per layer (the paper's
	// precision-adaptable EMACs) and fold the standardizer in.
	mixed := positron.QuantizeMixed(net, []positron.Arithmetic{
		positron.PositArith(8, 0), positron.PositArith(6, 0), positron.PositArith(8, 0),
	})
	mixed.Stand = std

	dir, err := os.MkdirTemp("", "positron-serving")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "iris.json")
	if err := mixed.Save(path); err != nil {
		panic(err)
	}

	// Deployment side: the loader does not care which precision layout
	// the artifact uses — everything behind one Model interface.
	model, err := positron.LoadModel(path)
	if err != nil {
		panic(err)
	}
	fmt.Printf("loaded %s: kind=%s, %d features -> %d classes, %d bits of parameter memory\n",
		model, model.Kind(), model.InputDim(), model.OutputDim(), model.MemoryBits())

	rt, err := positron.NewRuntime(model,
		positron.WithWorkers(4),
		positron.WithWarmTables(),
	)
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	// Batched serving with cancellation: raw features in, logits out.
	ctx := context.Background()
	logits, err := rt.InferBatch(ctx, test.X)
	if err != nil {
		panic(err)
	}
	acc, err := rt.Accuracy(ctx, test)
	if err != nil {
		panic(err)
	}
	fmt.Printf("served %d inferences, accuracy %.1f%%\n", len(logits), 100*acc)
	fmt.Printf("sample 0: logits %.3v\n", logits[0])

	// Streaming serving: Submit feeds the pool, Results delivers in
	// completion order, Close drains without dropping anything.
	go func() {
		for i, x := range test.X[:10] {
			if err := rt.Submit(ctx, i, x); err != nil {
				panic(err)
			}
		}
		rt.Close()
	}()
	served := 0
	for res := range rt.Results() {
		served++
		_ = res.Class
	}
	fmt.Printf("streamed %d results, runtime closed cleanly\n", served)
}
