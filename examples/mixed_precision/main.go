// Mixed precision: extend Deep Positron's "precision-adaptable" EMACs to
// one format per layer. The experiment deploys the Breast Cancer network
// with an 8-bit posit front layer (which must swallow the wide-range
// folded weights) and narrower posits deeper in the network, and runs the
// per-layer fixed-point search that repairs the Table II fixed-point
// collapse. It also exercises the cycle-level streaming simulator.
package main

import (
	"fmt"

	positron "repro"
)

func main() {
	train, test := positron.BreastCancerSplit(0x5690)
	std := positron.FitStandardizer(train)
	net := positron.NewMLP([]int{30, 16, 8, 2}, 101)
	cfg := positron.DefaultTrainConfig()
	cfg.Epochs = 120
	cfg.LR = 0.02
	positron.Train(net, std.Apply(train), cfg)
	net.FoldInputAffine(std.InputAffine())

	fmt.Printf("WBC float32 baseline: %.2f%%\n\n", 100*positron.Accuracy32(net, test))

	// Uniform 8-bit posit vs mixed-width posits.
	uniform := positron.QuantizeNetwork(net, positron.PositArith(8, 2))
	fmt.Printf("%-46s %6.2f%%  (%d weight-memory bits)\n",
		"uniform posit(8,2)", 100*uniform.Accuracy(test), uniform.MemoryBits())
	for _, mix := range [][]positron.Arithmetic{
		{positron.PositArith(8, 2), positron.PositArith(6, 1), positron.PositArith(6, 1)},
		{positron.PositArith(8, 2), positron.PositArith(5, 1), positron.PositArith(5, 1)},
	} {
		m := positron.QuantizeMixed(net, mix)
		fmt.Printf("%-46s %6.2f%%  (%d weight-memory bits)\n",
			m.String(), 100*m.Accuracy(test), m.MemoryBits())
	}

	// Per-layer fixed-point: one shared Q-format collapses on this net
	// (Table II); per-layer q recovers part of the loss.
	fixeds := make([]positron.Arithmetic, 0)
	_, _, fx := positron.Candidates(8)
	fixeds = append(fixeds, fx...)
	global := positron.BestConfig(net, test, fixeds)
	perLayer, qs := positron.SearchPerLayerFixed(net, test, 8)
	fmt.Printf("\nfixed(8) global best   %s: %6.2f%%\n", global.Arith.Name(), 100*global.Accuracy)
	fmt.Printf("fixed(8) per-layer q=%v: %6.2f%%\n", qs, 100*perLayer.Accuracy(test))

	// Streaming: throughput vs single-shot latency on the same engine.
	dp := positron.QuantizeNetwork(net, positron.PositArith(8, 2))
	_, stats, _ := dp.StreamInfer(test.X[:64], false)
	fmt.Printf("\nstreaming 64 inferences: first-out after %d cycles, then one per %d cycles (%.2f serial speedup)\n",
		stats.FirstLatency, stats.SteadyInterval,
		float64(dp.Cycles()*stats.Inputs)/float64(stats.TotalCycles))
}
