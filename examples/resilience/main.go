// Resilience: the distributed serving plane under fire — two positrond
// replicas behind the routing tier, one replica seeded with
// deterministic faults (injected 503s and latency spikes), then killed
// outright. The router's retries, health probes and circuit breaker
// keep every client request answering 200 with bit-identical logits,
// and the /v1/metrics snapshot shows the breaker doing its job.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	positron "repro"
)

func main() {
	// One trained, quantised artifact served by both replicas: replicas
	// must be interchangeable for retries and failover to be invisible.
	train, test := positron.IrisSplit(0x1715)
	std := positron.FitStandardizer(train)
	net64 := positron.NewMLP([]int{4, 10, 6, 3}, 7)
	cfg := positron.DefaultTrainConfig()
	cfg.Epochs = 150
	cfg.LR = 0.05
	cfg.LRDecay = 0.99
	positron.Train(net64, std.Apply(train), cfg)
	dp := positron.QuantizeNetwork(net64, positron.PositArith(8, 0))
	dp.Stand = std

	dir, err := os.MkdirTemp("", "positron-resilience")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "iris.json")
	if err := dp.Save(path); err != nil {
		panic(err)
	}

	// Replica A is flaky on purpose: a deterministic fault schedule
	// injects 503s on 30% of inferences and 5ms stalls on another 20%.
	// Replica B is clean.
	rule503, err := positron.ParseFaultRule("/v1/models/iris/infer:error=503@p=0.3")
	if err != nil {
		panic(err)
	}
	ruleLat, err := positron.ParseFaultRule("/v1/models/iris/infer:latency=5ms@p=0.2")
	if err != nil {
		panic(err)
	}
	inj := positron.NewFaultInjector(42, rule503, ruleLat)

	replicaA, closeA := startReplica(path, inj)
	replicaB, closeB := startReplica(path, nil)
	defer closeB()
	fmt.Println("replica A (faulty) on", replicaA, "— replica B (clean) on", replicaB)

	// The routing tier: probes every 100ms, opens a replica's breaker
	// after 2 consecutive failures, retries twice with jittered backoff.
	rt, err := positron.NewRouter([]string{replicaA, replicaB},
		positron.WithProbeInterval(100*time.Millisecond),
		positron.WithProbeTimeout(250*time.Millisecond),
		positron.WithBreakerThreshold(2),
		positron.WithBreakerCooldown(500*time.Millisecond),
		positron.WithMaxRetries(2),
		positron.WithRetryBackoff(2*time.Millisecond, 50*time.Millisecond),
	)
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	routerSrv := &http.Server{Handler: rt}
	go func() { _ = routerSrv.Serve(ln) }()
	defer routerSrv.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()
	fmt.Println("router listening on", base)

	// Phase 1: both replicas up, A injecting faults. Every request must
	// still answer 200 — the router retries over the injected 503s.
	sample, _ := json.Marshal(map[string]any{"input": test.X[0]})
	var reference []float64
	okCount := 0
	for i := 0; i < 40; i++ {
		logits, status := inferOnce(base, sample)
		if status == http.StatusOK {
			okCount++
			if reference == nil {
				reference = logits
			} else if !equal(reference, logits) {
				panic("logits diverged between replicas — they serve the same artifact, this must not happen")
			}
		}
	}
	fmt.Printf("phase 1 (fault injection on A): %d/40 requests answered 200, all logits bit-identical\n", okCount)
	fmt.Printf("  injector fired: %+v\n", inj.Counts())

	// Phase 2: kill replica A outright. Probes trip its breaker; every
	// request flows to B, still bit-identical.
	closeA()
	time.Sleep(400 * time.Millisecond) // a few probe rounds
	okCount = 0
	for i := 0; i < 20; i++ {
		logits, status := inferOnce(base, sample)
		if status == http.StatusOK {
			okCount++
			if !equal(reference, logits) {
				panic("logits changed after failover")
			}
		}
	}
	fmt.Printf("phase 2 (replica A killed): %d/20 requests answered 200 via failover\n", okCount)

	var m positron.RouterMetrics
	getInto(base+"/v1/metrics", &m)
	fmt.Printf("router counters: proxied=%d retries=%d unavailable=%d exhausted=%d\n",
		m.Router.Proxied, m.Router.Retries, m.Router.Unavailable, m.Router.Exhausted)
	for _, r := range m.Replicas {
		fmt.Printf("  replica %-28s breaker=%-9s healthy=%-5v opens=%d requests=%d failures=%d\n",
			r.Addr, r.State, r.Healthy, r.Opens, r.Requests, r.Failures)
	}
}

// startReplica boots one in-process positrond plane (registry + server),
// optionally wrapped in a fault injector, and returns its base URL.
func startReplica(artifactPath string, inj *positron.FaultInjector) (url string, stop func()) {
	reg := positron.NewRegistry(
		positron.WithRuntimeOptions(positron.WithWorkers(2), positron.WithWarmTables()),
		positron.WithBatchWindow(0),
	)
	if err := reg.LoadPath("iris", artifactPath); err != nil {
		panic(err)
	}
	srv := positron.NewServer(reg, "iris")
	var handler http.Handler = srv
	if inj != nil {
		handler = inj.Wrap(srv)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	httpSrv := &http.Server{Handler: handler}
	go func() { _ = httpSrv.Serve(ln) }()
	var once bool
	return "http://" + ln.Addr().String(), func() {
		if once {
			return
		}
		once = true
		httpSrv.Close()
		srv.Close()
	}
}

func inferOnce(base string, body []byte) (logits []float64, status int) {
	resp, err := http.Post(base+"/v1/models/iris/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var out struct {
		Result struct {
			Logits []float64 `json:"logits"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		panic(err)
	}
	return out.Result.Logits, resp.StatusCode
}

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func getInto(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		panic(err)
	}
}
