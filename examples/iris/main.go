// Iris: train a small MLP in float64, lower it onto Deep Positron at
// 8 bits in all three number systems, and compare accuracy plus hardware
// cost — a miniature version of the paper's Table II workflow.
package main

import (
	"fmt"

	positron "repro"
)

func main() {
	// The paper's split: 100 training samples, 50 inference samples.
	train, test := positron.IrisSplit(0x1715)
	strain, stest := positron.Standardize(train, test)

	net := positron.NewMLP([]int{4, 10, 6, 3}, 7)
	cfg := positron.DefaultTrainConfig()
	cfg.Epochs = 150
	cfg.LR = 0.05
	cfg.LRDecay = 0.99
	positron.Train(net, strain, cfg)

	fmt.Printf("trained %v\n", net)
	fmt.Printf("float64 accuracy: %.1f%%   float32 accuracy: %.1f%%\n\n",
		100*positron.Accuracy(net, stest), 100*positron.Accuracy32(net, stest))

	fmt.Println("8-bit Deep Positron inference (50 samples):")
	fmt.Printf("%-16s %-9s %-12s %-10s %-12s\n", "arithmetic", "accuracy", "fmax (MHz)", "LUTs", "EDP (J·s)")
	for _, arith := range []positron.Arithmetic{
		positron.PositArith(8, 0),
		positron.PositArith(8, 1),
		positron.FloatArith(8, 3),
		positron.FloatArith(8, 4),
		positron.FixedArith(8, 4),
		positron.FixedArith(8, 5),
	} {
		dp := positron.QuantizeNetwork(net, arith)
		acc := dp.Accuracy(stest)
		line := fmt.Sprintf("%-16s %7.1f%%", arith.Name(), 100*acc)
		if rep, ok := positron.Synthesize(arith, 16); ok {
			line += fmt.Sprintf("  %-12.0f %-10.0f %-12.3g", rep.FMaxMHz, rep.LUTs, rep.EDP)
		}
		fmt.Println(line)
	}

	// Full-sweep: let the library pick the best configuration per family,
	// exactly like the paper's §IV-B grid.
	fmt.Println("\nbest configuration per family at 8 bits:")
	posits, floats, fixeds := positron.Candidates(8)
	for _, cands := range [][]positron.Arithmetic{posits, floats, fixeds} {
		best := positron.BestConfig(net, stest, cands)
		fmt.Printf("  %-20s %.1f%%\n", best.Arith.Name(), 100*best.Accuracy)
	}

	// Memory: the paper stores parameters in on-chip memory next to the
	// EMACs; 8-bit posits need 4× less of it than float32.
	dp8 := positron.QuantizeNetwork(net, positron.PositArith(8, 0))
	dp32 := positron.QuantizeNetwork(net, positron.Float32Baseline())
	fmt.Printf("\non-chip parameter memory: %d bits at posit(8,0) vs %d bits at float32\n",
		dp8.MemoryBits(), dp32.MemoryBits())
}
