// Quickstart: a five-minute tour of the posit number system and the
// exact multiply-and-accumulate (EMAC) semantics the paper builds on.
package main

import (
	"fmt"

	positron "repro"
)

func main() {
	// A posit format is (n, es): n total bits, es exponent bits.
	p8 := positron.MustPositFormat(8, 0)
	fmt.Printf("format %v: maxpos=%g minpos=%g useed=%g dynamic range=%.1f decades\n",
		p8, p8.MaxPos().Float64(), p8.MinPos().Float64(), p8.USeed(), p8.DynamicRangeLog10())

	// Values round to nearest (ties to even), saturating at maxpos/minpos.
	x := p8.FromFloat64(3.14159)
	fmt.Printf("π  -> %s (pattern %s, error %+.4f)\n", x, x.BitString(), x.Float64()-3.14159)

	// Scalar arithmetic is correctly rounded.
	a, b := p8.FromFloat64(1.5), p8.FromFloat64(2.25)
	fmt.Printf("%g * %g = %g;  %g + %g = %g;  sqrt(2) ≈ %g\n",
		a.Float64(), b.Float64(), a.Mul(b).Float64(),
		a.Float64(), b.Float64(), a.Add(b).Float64(),
		p8.FromFloat64(2).Sqrt().Float64())

	// The quire: a wide fixed-point register (paper eq. (4)) that holds
	// dot products EXACTLY, rounding once at the end. This is what makes
	// the EMAC "exact".
	q := positron.NewQuire(p8, 3)
	fmt.Printf("quire width for k=3: %d bits\n", q.Width())

	w := []positron.Posit{p8.FromFloat64(0.0625), p8.FromFloat64(32), p8.FromFloat64(-32)}
	v := []positron.Posit{p8.FromFloat64(0.0625), p8.FromFloat64(1), p8.FromFloat64(1)}
	// 0.0625² + 32 - 32: a naive sequentially-rounded MAC loses the tiny
	// first product; the quire keeps it.
	naive := p8.Zero()
	for i := range w {
		naive = naive.Add(w[i].Mul(v[i]))
	}
	exact := positron.PositDot(w, v)
	fmt.Printf("0.0625² + 32 - 32:  naive MAC = %g,  exact EMAC = %g\n",
		naive.Float64(), exact.Float64())

	// The same EMAC abstraction covers fixed point and minifloats too.
	for _, arith := range []positron.Arithmetic{
		positron.PositArith(8, 0),
		positron.FloatArith(8, 4),
		positron.FixedArith(8, 4),
	} {
		mac := arith.NewMAC(3)
		mac.Reset(arith.Quantize(0))
		for i := 0; i < 3; i++ {
			mac.Step(arith.Quantize(1.25), arith.Quantize(2))
		}
		fmt.Printf("%-16s 3 × (1.25×2) = %g\n", arith.Name(), arith.Decode(mac.Result()))
	}
}
